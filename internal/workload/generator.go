package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Request is one whole-file access in a trace.
type Request struct {
	// Arrival is the arrival time in seconds from trace start.
	Arrival float64
	// FileID identifies the requested file.
	FileID int
}

// Trace is a replayable workload: a file population plus a time-ordered
// request stream over it.
type Trace struct {
	Files    FileSet
	Requests []Request
}

// Validate checks internal consistency: valid files, time-ordered requests,
// and every request referencing an existing file.
func (t *Trace) Validate() error {
	if err := t.Files.Validate(); err != nil {
		return err
	}
	ids := make(map[int]bool, len(t.Files))
	for _, f := range t.Files {
		ids[f.ID] = true
	}
	prev := math.Inf(-1)
	for i, r := range t.Requests {
		if r.Arrival < prev {
			return fmt.Errorf("workload: request %d arrives at %v before predecessor %v", i, r.Arrival, prev)
		}
		if r.Arrival < 0 || math.IsNaN(r.Arrival) || math.IsInf(r.Arrival, 0) {
			return fmt.Errorf("workload: request %d has invalid arrival %v", i, r.Arrival)
		}
		if !ids[r.FileID] {
			return fmt.Errorf("workload: request %d references unknown file %d", i, r.FileID)
		}
		prev = r.Arrival
	}
	return nil
}

// Stats summarizes a trace; the calibration targets come from §5.1.
type Stats struct {
	Files             int
	Requests          int
	Duration          float64 // time of last arrival
	MeanInterarrival  float64
	TotalBytesMB      float64 // volume requested (with repetition)
	MeanFileSizeMB    float64
	AccessTheta       float64 // measured skew parameter θ
	TopTwentyShare    float64 // fraction of accesses to the top 20% of files
	RequestsPerSecond float64
}

// ComputeStats derives summary statistics from a trace.
func (t *Trace) ComputeStats() (Stats, error) {
	if err := t.Validate(); err != nil {
		return Stats{}, err
	}
	s := Stats{Files: len(t.Files), Requests: len(t.Requests)}
	sizeByID := make(map[int]float64, len(t.Files))
	indexByID := make(map[int]int, len(t.Files))
	for i, f := range t.Files {
		sizeByID[f.ID] = f.SizeMB
		indexByID[f.ID] = i
		s.MeanFileSizeMB += f.SizeMB
	}
	s.MeanFileSizeMB /= float64(len(t.Files))
	if len(t.Requests) == 0 {
		s.AccessTheta = 1
		return s, nil
	}
	counts := make([]int, len(t.Files))
	for _, r := range t.Requests {
		s.TotalBytesMB += sizeByID[r.FileID]
		counts[indexByID[r.FileID]]++
	}
	s.Duration = t.Requests[len(t.Requests)-1].Arrival
	if len(t.Requests) > 1 {
		s.MeanInterarrival = s.Duration / float64(len(t.Requests)-1)
	}
	if s.Duration > 0 {
		s.RequestsPerSecond = float64(len(t.Requests)) / s.Duration
	}
	theta, err := MeasureTheta(counts)
	if err != nil {
		return Stats{}, err
	}
	s.AccessTheta = theta

	sorted := make([]int, len(counts))
	copy(sorted, counts)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	k := int(math.Ceil(0.2 * float64(len(sorted))))
	if k < 1 {
		k = 1
	}
	var top, total int64
	for i, c := range sorted {
		total += int64(c)
		if i < k {
			top += int64(c)
		}
	}
	if total > 0 {
		s.TopTwentyShare = float64(top) / float64(total)
	}
	return s, nil
}

// GenConfig parameterizes the synthetic WorldCup98-like generator. The
// defaults reproduce the aggregate statistics the paper reports for the
// WorldCup98-05-09 day it replays.
type GenConfig struct {
	// NumFiles is the file population size (paper: 4,079).
	NumFiles int
	// NumRequests is the request count (paper: 1,480,081; experiments
	// scale this down proportionally with duration).
	NumRequests int
	// MeanInterarrival is the mean request inter-arrival time in seconds
	// (paper: 58.4 ms). Arrivals are Poisson.
	MeanInterarrival float64
	// ZipfAlpha is the popularity skew (paper: α ∈ [0,1]; web traces
	// cluster around 0.7-0.8).
	ZipfAlpha float64
	// SizeMedianMB and SizeSigma parameterize the lognormal file-size
	// distribution; web object sizes are heavy-tailed.
	SizeMedianMB float64
	SizeSigma    float64
	// MaxSizeMB truncates the size tail so one pathological draw cannot
	// dominate the simulation. Zero disables truncation.
	MaxSizeMB float64
	// Seed makes generation reproducible.
	Seed int64

	// PhaseSeconds enables popularity churn: every PhaseSeconds of trace
	// time, the popularity ranking rotates by PhaseRotate·NumFiles
	// positions, so previously hot files cool off and cold files heat up
	// — the temporal drift real web traces exhibit (new pages displace
	// old ones) that makes adaptive policies migrate and lets idle disks
	// be re-disturbed. Zero disables churn (static Zipf ranks).
	PhaseSeconds float64
	// PhaseRotate is the fraction of the churn scope rotated per phase,
	// in [0,1]. Zero with PhaseSeconds set defaults to 0.10.
	PhaseRotate float64
	// PhaseScope is the fraction of the rank table (from the popular end)
	// that churn rotates within, in (0,1]. Popularity drift in real web
	// workloads reshuffles the head of the catalog — new pages displace
	// old ones among the small, popular objects — without promoting the
	// archival tail (the biggest objects) to the top of the chart. Zero
	// with PhaseSeconds set defaults to 0.5.
	PhaseScope float64

	// DiurnalProfile, when non-empty, modulates the arrival rate over the
	// trace's day with piecewise-constant multipliers spread evenly over
	// one trace period (NumRequests·MeanInterarrival seconds — a full day
	// at the calibrated defaults). The profile is normalized to mean 1 so
	// the aggregate request count and mean inter-arrival stay calibrated.
	// Web traffic is strongly diurnal (WorldCup98 included); the deep
	// night valley is what gives energy policies their long idle periods.
	// Empty means a flat (homogeneous Poisson) profile.
	DiurnalProfile []float64
}

// DefaultDiurnalProfile returns a 24-bucket (hourly) web-server day: a deep
// night valley, a morning ramp, a midday peak, and an evening shoulder.
func DefaultDiurnalProfile() []float64 {
	return []float64{
		// 00:00 .. 07:00 — night valley
		0.25, 0.15, 0.10, 0.10, 0.10, 0.15, 0.30, 0.60,
		// 08:00 .. 15:00 — ramp to midday peak
		1.10, 1.50, 1.80, 1.95, 2.00, 1.90, 1.80, 1.70,
		// 16:00 .. 23:00 — afternoon/evening shoulder and decline
		1.60, 1.50, 1.40, 1.30, 1.10, 0.90, 0.60, 0.40,
	}
}

// DefaultGenConfig returns the paper-calibrated generator configuration.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		NumFiles:         4079,
		NumRequests:      1480081,
		MeanInterarrival: 0.0584,
		ZipfAlpha:        0.75,
		SizeMedianMB:     0.015, // ~15 KB median web object
		SizeSigma:        1.0,
		MaxSizeMB:        8,
		Seed:             1,
	}
}

// Validate reports the first invalid generator parameter.
func (c GenConfig) Validate() error {
	switch {
	case c.NumFiles <= 0:
		return errors.New("workload: NumFiles must be positive")
	case c.NumRequests < 0:
		return errors.New("workload: NumRequests must be non-negative")
	case c.MeanInterarrival <= 0:
		return errors.New("workload: MeanInterarrival must be positive")
	case c.ZipfAlpha < 0:
		return errors.New("workload: ZipfAlpha must be non-negative")
	case c.SizeMedianMB <= 0:
		return errors.New("workload: SizeMedianMB must be positive")
	case c.SizeSigma < 0:
		return errors.New("workload: SizeSigma must be non-negative")
	case c.MaxSizeMB < 0:
		return errors.New("workload: MaxSizeMB must be non-negative")
	case c.PhaseSeconds < 0:
		return errors.New("workload: PhaseSeconds must be non-negative")
	case c.PhaseRotate < 0 || c.PhaseRotate > 1:
		return errors.New("workload: PhaseRotate must be in [0,1]")
	case c.PhaseScope < 0 || c.PhaseScope > 1:
		return errors.New("workload: PhaseScope must be in [0,1]")
	}
	for i, m := range c.DiurnalProfile {
		if m <= 0 || math.IsNaN(m) || math.IsInf(m, 0) {
			return fmt.Errorf("workload: diurnal multiplier %d (%v) must be positive and finite", i, m)
		}
	}
	return nil
}

// Generate builds a synthetic trace. File sizes are drawn lognormally and
// assigned so that popularity is inversely correlated with size (smallest
// file = most popular), matching the paper's §4 assumption; per-file access
// rates are set from the Zipf law and the aggregate arrival rate; arrivals
// are Poisson.
func Generate(cfg GenConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	sizes := make([]float64, cfg.NumFiles)
	for i := range sizes {
		s := math.Exp(math.Log(cfg.SizeMedianMB) + cfg.SizeSigma*rng.NormFloat64())
		if cfg.MaxSizeMB > 0 && s > cfg.MaxSizeMB {
			s = cfg.MaxSizeMB
		}
		const minSizeMB = 0.0005 // 512 bytes floor
		if s < minSizeMB {
			s = minSizeMB
		}
		sizes[i] = s
	}
	sort.Float64s(sizes) // ascending: index 0 = smallest = most popular

	law := ZipfLaw{Alpha: cfg.ZipfAlpha, N: cfg.NumFiles}
	probs, err := law.Probabilities()
	if err != nil {
		return nil, err
	}

	aggregateRate := 1 / cfg.MeanInterarrival
	files := make(FileSet, cfg.NumFiles)
	for i := range files {
		files[i] = File{
			ID:         i,
			SizeMB:     sizes[i],
			AccessRate: probs[i] * aggregateRate,
		}
	}

	sampler, err := NewAliasSampler(probs)
	if err != nil {
		return nil, err
	}
	rotate, scope := 0, cfg.NumFiles
	if cfg.PhaseSeconds > 0 {
		scopeFrac := cfg.PhaseScope
		if scopeFrac == 0 {
			scopeFrac = 0.5
		}
		scope = int(scopeFrac * float64(cfg.NumFiles))
		if scope < 2 {
			scope = 2
		}
		frac := cfg.PhaseRotate
		if frac == 0 {
			frac = 0.10
		}
		rotate = int(frac * float64(scope))
		if rotate < 1 {
			rotate = 1
		}
	}
	arrive := makeArrivalProcess(cfg, rng)
	reqs := make([]Request, cfg.NumRequests)
	clock := 0.0
	for i := range reqs {
		clock = arrive(clock)
		rank := sampler.Sample(rng)
		if rotate > 0 && rank < scope {
			phase := int(clock / cfg.PhaseSeconds)
			rank = (rank + phase*rotate) % scope
		}
		reqs[i] = Request{Arrival: clock, FileID: rank}
	}

	return &Trace{Files: files, Requests: reqs}, nil
}

// makeArrivalProcess returns a function advancing the arrival clock by one
// inter-arrival gap. With a diurnal profile the process is a
// piecewise-constant-rate Poisson process, generated exactly: by
// memorylessness, a draw that crosses a rate boundary is discarded and
// redrawn from the boundary at the new rate.
func makeArrivalProcess(cfg GenConfig, rng *rand.Rand) func(clock float64) float64 {
	if len(cfg.DiurnalProfile) == 0 {
		return func(clock float64) float64 {
			return clock + rng.ExpFloat64()*cfg.MeanInterarrival
		}
	}
	prof := append([]float64(nil), cfg.DiurnalProfile...)
	var mean float64
	for _, m := range prof {
		mean += m
	}
	mean /= float64(len(prof))
	for i := range prof {
		prof[i] /= mean // normalize to mean 1
	}
	period := float64(cfg.NumRequests) * cfg.MeanInterarrival
	bucketLen := period / float64(len(prof))
	multAt := func(t float64) float64 {
		b := int(t/bucketLen) % len(prof)
		if b < 0 {
			b = 0
		}
		return prof[b]
	}
	return func(clock float64) float64 {
		for {
			rate := multAt(clock) / cfg.MeanInterarrival
			gap := rng.ExpFloat64() / rate
			boundary := (math.Floor(clock/bucketLen) + 1) * bucketLen
			if boundary <= clock {
				// clock sits exactly on a boundary whose division
				// rounded down; without this the loop cannot advance.
				boundary += bucketLen
			}
			if clock+gap < boundary {
				return clock + gap
			}
			clock = boundary
		}
	}
}

// Scaled returns a copy of the config with the request count and duration
// scaled by factor (0 < factor <= 1), preserving the arrival intensity.
// Experiments use it to run minutes instead of a full day.
func (c GenConfig) Scaled(factor float64) (GenConfig, error) {
	if factor <= 0 || factor > 1 || math.IsNaN(factor) {
		return GenConfig{}, fmt.Errorf("workload: scale factor %v outside (0,1]", factor)
	}
	out := c
	out.NumRequests = int(math.Round(float64(c.NumRequests) * factor))
	return out, nil
}

// WithIntensity returns a copy with the arrival intensity multiplied by
// `times` (mean inter-arrival divided by it); the paper's "heavy workload"
// condition is the same trace at a higher arrival intensity.
func (c GenConfig) WithIntensity(times float64) (GenConfig, error) {
	if times <= 0 || math.IsNaN(times) || math.IsInf(times, 0) {
		return GenConfig{}, fmt.Errorf("workload: intensity multiplier %v must be positive and finite", times)
	}
	out := c
	out.MeanInterarrival = c.MeanInterarrival / times
	return out, nil
}

package workload

import (
	"strings"
	"testing"
)

const sampleLog = `# comment line
host1 - - [02/May/1998:21:30:17 +0000] "GET /images/logo.gif HTTP/1.0" 200 1839
host2 - - [02/May/1998:21:30:18 +0000] "GET /index.html HTTP/1.0" 200 4096
host1 - - [02/May/1998:21:30:20 +0000] "GET /images/logo.gif HTTP/1.0" 200 1839
garbage line that does not parse
host3 - - [02/May/1998:21:30:25 +0000] "GET /big.mpg HTTP/1.0" 200 2097152
host4 - - [02/May/1998:21:30:26 +0000] "HEAD /index.html HTTP/1.0" 200 -
`

func TestParseCommonLog(t *testing.T) {
	tr, skipped, err := ParseCommonLog(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1", skipped)
	}
	if len(tr.Requests) != 5 {
		t.Fatalf("requests = %d, want 5", len(tr.Requests))
	}
	if len(tr.Files) != 3 {
		t.Fatalf("files = %d, want 3", len(tr.Files))
	}
	// Arrival offsets from the first entry.
	if tr.Requests[0].Arrival != 0 {
		t.Fatalf("first arrival = %v", tr.Requests[0].Arrival)
	}
	if tr.Requests[1].Arrival != 1 || tr.Requests[2].Arrival != 3 {
		t.Fatalf("offsets = %v, %v", tr.Requests[1].Arrival, tr.Requests[2].Arrival)
	}
	// Repeated file resolves to the same id.
	if tr.Requests[0].FileID != tr.Requests[2].FileID {
		t.Fatal("repeated path mapped to different files")
	}
	// Sizes: logo.gif 1839 bytes, big.mpg 2 MB.
	byID := map[int]File{}
	for _, f := range tr.Files {
		byID[f.ID] = f
	}
	logo := byID[tr.Requests[0].FileID]
	if logo.SizeMB < 0.0017 || logo.SizeMB > 0.0018 {
		t.Fatalf("logo size = %v MB", logo.SizeMB)
	}
	big := byID[tr.Requests[3].FileID]
	if big.SizeMB < 1.99 || big.SizeMB > 2.01 {
		t.Fatalf("big.mpg size = %v MB", big.SizeMB)
	}
	// The dash byte count (HEAD) yields the floor size, not a parse error.
	head := byID[tr.Requests[4].FileID]
	if head.SizeMB <= 0 {
		t.Fatalf("dash-bytes file size = %v", head.SizeMB)
	}
	// Rates proportional to counts.
	if logo.AccessRate <= big.AccessRate {
		t.Fatal("twice-accessed file should have a higher rate")
	}
}

func TestParseCommonLogTimestampWithoutZone(t *testing.T) {
	log := `h - - [02/May/1998:21:30:17] "GET /a HTTP/1.0" 200 100
h - - [02/May/1998:21:30:19] "GET /a HTTP/1.0" 200 100
`
	tr, skipped, err := ParseCommonLog(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(tr.Requests) != 2 {
		t.Fatalf("skipped=%d requests=%d", skipped, len(tr.Requests))
	}
	if tr.Requests[1].Arrival != 2 {
		t.Fatalf("offset = %v", tr.Requests[1].Arrival)
	}
}

func TestParseCommonLogOutOfOrderClamped(t *testing.T) {
	log := `h - - [02/May/1998:21:30:20 +0000] "GET /a HTTP/1.0" 200 100
h - - [02/May/1998:21:30:17 +0000] "GET /b HTTP/1.0" 200 100
h - - [02/May/1998:21:30:25 +0000] "GET /a HTTP/1.0" 200 100
`
	tr, _, err := ParseCommonLog(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("clamped trace invalid: %v", err)
	}
}

func TestParseCommonLogRejectsEmpty(t *testing.T) {
	if _, _, err := ParseCommonLog(strings.NewReader("nothing useful\n")); err == nil {
		t.Fatal("unparsable log accepted")
	}
	if _, _, err := ParseCommonLog(strings.NewReader("")); err == nil {
		t.Fatal("empty log accepted")
	}
}

func TestParseCommonLogMalformedVariants(t *testing.T) {
	bad := []string{
		`h - - 02/May/1998:21:30:17 "GET /a HTTP/1.0" 200 100`,         // no brackets
		`h - - [bogus] "GET /a HTTP/1.0" 200 100`,                      // bad stamp
		`h - - [02/May/1998:21:30:17 +0000] GET /a 200 100`,            // no quotes
		`h - - [02/May/1998:21:30:17 +0000] "GET" 200 100`,             // short request
		`h - - [02/May/1998:21:30:17 +0000] "GET /a HTTP/1.0"`,         // no tail
		`h - - [02/May/1998:21:30:17 +0000] "GET /a HTTP/1.0" 200 xyz`, // bad bytes
	}
	for i, line := range bad {
		good := `h - - [02/May/1998:21:30:18 +0000] "GET /ok HTTP/1.0" 200 10`
		tr, skipped, err := ParseCommonLog(strings.NewReader(line + "\n" + good + "\n"))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if skipped != 1 || len(tr.Requests) != 1 {
			t.Fatalf("case %d: skipped=%d requests=%d", i, skipped, len(tr.Requests))
		}
	}
}

func TestParsedLogRunsThroughSimulatorCodec(t *testing.T) {
	// The converted trace must round-trip the text codec.
	tr, _, err := ParseCommonLog(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteTrace(&sb, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Requests) != len(tr.Requests) {
		t.Fatal("round trip lost requests")
	}
}

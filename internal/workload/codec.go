package workload

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The trace text format is line-oriented and self-describing:
//
//	# anything            comment
//	file <id> <size_mb> <access_rate>
//	req <arrival_s> <file_id>
//
// File lines must precede the request lines that reference them. The format
// is a lowest-common-denominator stand-in for the binary WorldCup98 format
// so real traces can be converted and replayed.

// WriteTrace serializes a trace.
func WriteTrace(w io.Writer, t *Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# disk-array workload trace: %d files, %d requests\n",
		len(t.Files), len(t.Requests))
	for _, f := range t.Files {
		fmt.Fprintf(bw, "file %d %.9g %.9g\n", f.ID, f.SizeMB, f.AccessRate)
	}
	for _, r := range t.Requests {
		fmt.Fprintf(bw, "req %.9f %d\n", r.Arrival, r.FileID)
	}
	return bw.Flush()
}

// ReadTrace parses a trace written by WriteTrace (or hand-converted from
// another source). It validates the result before returning it.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	t := &Trace{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "file":
			if len(fields) != 4 {
				return nil, fmt.Errorf("workload: line %d: file record needs 3 fields", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("workload: line %d: bad file id: %v", lineNo, err)
			}
			size, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("workload: line %d: bad size: %v", lineNo, err)
			}
			rate, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("workload: line %d: bad rate: %v", lineNo, err)
			}
			t.Files = append(t.Files, File{ID: id, SizeMB: size, AccessRate: rate})
		case "req":
			if len(fields) != 3 {
				return nil, fmt.Errorf("workload: line %d: req record needs 2 fields", lineNo)
			}
			at, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, fmt.Errorf("workload: line %d: bad arrival: %v", lineNo, err)
			}
			id, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("workload: line %d: bad file id: %v", lineNo, err)
			}
			t.Requests = append(t.Requests, Request{Arrival: at, FileID: id})
		default:
			return nil, fmt.Errorf("workload: line %d: unknown record type %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(t.Files) == 0 {
		return nil, errors.New("workload: trace contains no files")
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

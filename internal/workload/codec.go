package workload

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// The trace text format is line-oriented and self-describing:
//
//	# anything            comment
//	file <id> <size_mb> <access_rate>
//	req <arrival_s> <file_id>
//
// File lines must precede the request lines that reference them. The format
// is a lowest-common-denominator stand-in for the binary WorldCup98 format
// so real traces can be converted and replayed.

// WriteTrace serializes a trace.
func WriteTrace(w io.Writer, t *Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# disk-array workload trace: %d files, %d requests\n",
		len(t.Files), len(t.Requests))
	// %g prints the shortest decimal that parses back to the identical
	// float64, so decode(encode(t)) == t exactly.
	for _, f := range t.Files {
		fmt.Fprintf(bw, "file %d %g %g\n", f.ID, f.SizeMB, f.AccessRate)
	}
	for _, r := range t.Requests {
		fmt.Fprintf(bw, "req %g %d\n", r.Arrival, r.FileID)
	}
	return bw.Flush()
}

// ReadTrace parses a trace written by WriteTrace (or hand-converted from
// another source). Malformed records — NaN, infinite, or negative
// timestamps, out-of-order arrivals, zero-size files — are rejected here
// with the offending line number rather than propagated into the simulator,
// and the assembled trace is fully validated before it is returned.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	t := &Trace{}
	lineNo := 0
	prevArrival := math.Inf(-1)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "file":
			if len(fields) != 4 {
				return nil, fmt.Errorf("workload: line %d: file record needs 3 fields", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("workload: line %d: bad file id: %v", lineNo, err)
			}
			size, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("workload: line %d: bad size: %v", lineNo, err)
			}
			rate, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("workload: line %d: bad rate: %v", lineNo, err)
			}
			if size <= 0 || math.IsNaN(size) || math.IsInf(size, 0) {
				return nil, fmt.Errorf("workload: line %d: file %d size %v must be positive and finite", lineNo, id, size)
			}
			if rate < 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
				return nil, fmt.Errorf("workload: line %d: file %d access rate %v must be non-negative and finite", lineNo, id, rate)
			}
			t.Files = append(t.Files, File{ID: id, SizeMB: size, AccessRate: rate})
		case "req":
			if len(fields) != 3 {
				return nil, fmt.Errorf("workload: line %d: req record needs 2 fields", lineNo)
			}
			at, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, fmt.Errorf("workload: line %d: bad arrival: %v", lineNo, err)
			}
			id, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("workload: line %d: bad file id: %v", lineNo, err)
			}
			if at < 0 || math.IsNaN(at) || math.IsInf(at, 0) {
				return nil, fmt.Errorf("workload: line %d: arrival %v must be non-negative and finite", lineNo, at)
			}
			if at < prevArrival {
				return nil, fmt.Errorf("workload: line %d: arrival %v is before its predecessor %v (requests must be time-ordered)", lineNo, at, prevArrival)
			}
			prevArrival = at
			t.Requests = append(t.Requests, Request{Arrival: at, FileID: id})
		default:
			return nil, fmt.Errorf("workload: line %d: unknown record type %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(t.Files) == 0 {
		return nil, errors.New("workload: trace contains no files")
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	cfg := smallConfig()
	cfg.NumRequests = 1000
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Files) != len(tr.Files) || len(back.Requests) != len(tr.Requests) {
		t.Fatalf("round trip size mismatch: %d/%d files, %d/%d requests",
			len(back.Files), len(tr.Files), len(back.Requests), len(tr.Requests))
	}
	for i := range tr.Files {
		a, b := tr.Files[i], back.Files[i]
		if a.ID != b.ID || relDiff(a.SizeMB, b.SizeMB) > 1e-8 || relDiff(a.AccessRate, b.AccessRate) > 1e-8 {
			t.Fatalf("file %d mismatch: %+v vs %+v", i, a, b)
		}
	}
	for i := range tr.Requests {
		a, b := tr.Requests[i], back.Requests[i]
		if a.FileID != b.FileID || relDiff(a.Arrival, b.Arrival) > 1e-6 {
			t.Fatalf("request %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if m < 0 {
		m = -m
	}
	if m < 1 {
		m = 1
	}
	return d / m
}

func TestWriteTraceRejectsInvalid(t *testing.T) {
	bad := &Trace{Files: FileSet{{ID: 0, SizeMB: -1}}}
	if err := WriteTrace(&bytes.Buffer{}, bad); err == nil {
		t.Fatal("invalid trace written")
	}
}

func TestReadTraceCommentsAndBlanks(t *testing.T) {
	in := `# header comment

file 0 1.5 2.0
# interior comment
req 0.5 0
req 1.0 0
`
	tr, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Files) != 1 || len(tr.Requests) != 2 {
		t.Fatalf("parsed %d files, %d requests", len(tr.Files), len(tr.Requests))
	}
	if tr.Files[0].SizeMB != 1.5 || tr.Files[0].AccessRate != 2.0 {
		t.Fatalf("file fields: %+v", tr.Files[0])
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"unknown record", "blob 1 2\n"},
		{"short file record", "file 1 2\n"},
		{"bad file id", "file x 1 1\n"},
		{"bad size", "file 0 x 1\n"},
		{"bad rate", "file 0 1 x\n"},
		{"short req record", "file 0 1 1\nreq 1\n"},
		{"bad arrival", "file 0 1 1\nreq x 0\n"},
		{"bad req file id", "file 0 1 1\nreq 1 x\n"},
		{"empty", ""},
		{"req references missing file", "file 0 1 1\nreq 1 5\n"},
		{"out of order requests", "file 0 1 1\nreq 5 0\nreq 1 0\n"},
	}
	for _, tc := range cases {
		if _, err := ReadTrace(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

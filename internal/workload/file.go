// Package workload models the paper's file-level web workload: a set of
// whole files with sizes and access rates, a Zipf-like popularity law with
// the paper's skew parameter θ, and a synthetic trace generator calibrated
// to the WorldCup98-05-09 statistics the paper reports (§5.1: 4,079 files,
// 1,480,081 requests, 58.4 ms mean request inter-arrival). A simple text
// codec lets real traces be stored and replayed.
package workload

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// File is one stored file (paper §4): fi = (si, λi) with size in MB and
// access rate in requests/second.
type File struct {
	ID         int
	SizeMB     float64
	AccessRate float64
}

// Load returns hi = λi · si (paper §4): the file's service-time demand per
// unit time, using the paper's simplification that service time is
// proportional to size for whole-file scans.
func (f File) Load() float64 { return f.AccessRate * f.SizeMB }

// FileSet is a collection of files.
type FileSet []File

// Validate reports the first malformed file.
func (fs FileSet) Validate() error {
	if len(fs) == 0 {
		return errors.New("workload: empty file set")
	}
	seen := make(map[int]bool, len(fs))
	for i, f := range fs {
		if f.SizeMB <= 0 || math.IsNaN(f.SizeMB) || math.IsInf(f.SizeMB, 0) {
			return fmt.Errorf("workload: file %d has invalid size %v", f.ID, f.SizeMB)
		}
		if f.AccessRate < 0 || math.IsNaN(f.AccessRate) || math.IsInf(f.AccessRate, 0) {
			return fmt.Errorf("workload: file %d has invalid access rate %v", f.ID, f.AccessRate)
		}
		if seen[f.ID] {
			return fmt.Errorf("workload: duplicate file id %d (index %d)", f.ID, i)
		}
		seen[f.ID] = true
	}
	return nil
}

// TotalLoad returns Σ hi over the set.
func (fs FileSet) TotalLoad() float64 {
	var sum float64
	for _, f := range fs {
		sum += f.Load()
	}
	return sum
}

// TotalSizeMB returns the aggregate size.
func (fs FileSet) TotalSizeMB() float64 {
	var sum float64
	for _, f := range fs {
		sum += f.SizeMB
	}
	return sum
}

// SortBySizeAscending orders the set smallest-first, the paper's initial
// popularity proxy ("the popularity ... of a file is inversely correlated
// to its size", §4). Ties break by ID for determinism.
func (fs FileSet) SortBySizeAscending() {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].SizeMB != fs[j].SizeMB {
			return fs[i].SizeMB < fs[j].SizeMB
		}
		return fs[i].ID < fs[j].ID
	})
}

// SortByRateDescending orders the set most-accessed-first, the ordering the
// READ File Redistribution Daemon re-establishes at each epoch from observed
// counts. Ties break by ID.
func (fs FileSet) SortByRateDescending() {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].AccessRate != fs[j].AccessRate {
			return fs[i].AccessRate > fs[j].AccessRate
		}
		return fs[i].ID < fs[j].ID
	})
}

// Clone returns an independent copy.
func (fs FileSet) Clone() FileSet {
	out := make(FileSet, len(fs))
	copy(out, fs)
	return out
}

package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func smallConfig() GenConfig {
	cfg := DefaultGenConfig()
	cfg.NumFiles = 300
	cfg.NumRequests = 20000
	return cfg
}

func TestDefaultGenConfigValid(t *testing.T) {
	if err := DefaultGenConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestGenConfigValidation(t *testing.T) {
	mutations := []func(*GenConfig){
		func(c *GenConfig) { c.NumFiles = 0 },
		func(c *GenConfig) { c.NumRequests = -1 },
		func(c *GenConfig) { c.MeanInterarrival = 0 },
		func(c *GenConfig) { c.ZipfAlpha = -0.1 },
		func(c *GenConfig) { c.SizeMedianMB = 0 },
		func(c *GenConfig) { c.SizeSigma = -1 },
		func(c *GenConfig) { c.MaxSizeMB = -1 },
	}
	for i, mut := range mutations {
		cfg := DefaultGenConfig()
		mut(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestGenerateProducesValidTrace(t *testing.T) {
	tr, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	if len(tr.Files) != 300 || len(tr.Requests) != 20000 {
		t.Fatalf("sizes: %d files, %d requests", len(tr.Files), len(tr.Requests))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs between identical seeds", i)
		}
	}
	cfg := smallConfig()
	cfg.Seed = 2
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Requests {
		if a.Requests[i] != c.Requests[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGeneratePopularityInverseToSize(t *testing.T) {
	tr, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Files are emitted in popularity order (ID = rank); sizes must be
	// non-decreasing with rank and rates non-increasing.
	for i := 1; i < len(tr.Files); i++ {
		if tr.Files[i].SizeMB < tr.Files[i-1].SizeMB {
			t.Fatalf("size not ascending at rank %d", i)
		}
		if tr.Files[i].AccessRate > tr.Files[i-1].AccessRate {
			t.Fatalf("rate not descending at rank %d", i)
		}
	}
}

func TestGenerateCalibration(t *testing.T) {
	// The generated trace matches the configured aggregate statistics.
	cfg := smallConfig()
	cfg.NumRequests = 50000
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := tr.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.MeanInterarrival-cfg.MeanInterarrival)/cfg.MeanInterarrival > 0.05 {
		t.Fatalf("mean interarrival %v, want ≈%v", st.MeanInterarrival, cfg.MeanInterarrival)
	}
	// Zipf alpha 0.75 over 300 files concentrates the top 20% well above
	// their uniform share.
	if st.TopTwentyShare < 0.4 {
		t.Fatalf("top-20%% share %v, want skewed (>0.4)", st.TopTwentyShare)
	}
	if st.AccessTheta <= 0 || st.AccessTheta >= 1 {
		t.Fatalf("measured theta %v outside (0,1)", st.AccessTheta)
	}
}

func TestGeneratePaperScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale generation in -short mode")
	}
	// Full paper-scale day: 4,079 files and 1.48M requests.
	tr, err := Generate(DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	st, err := tr.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Files != 4079 || st.Requests != 1480081 {
		t.Fatalf("stats: %d files, %d requests", st.Files, st.Requests)
	}
	// One day ±5%: 1480081 * 0.0584s ≈ 86,437 s.
	if math.Abs(st.Duration-86437)/86437 > 0.05 {
		t.Fatalf("duration %v, want ≈86437 s", st.Duration)
	}
}

func TestScaled(t *testing.T) {
	cfg := DefaultGenConfig()
	half, err := cfg.Scaled(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if half.NumRequests != 740041 && half.NumRequests != 740040 {
		t.Fatalf("scaled requests = %d", half.NumRequests)
	}
	if half.MeanInterarrival != cfg.MeanInterarrival {
		t.Fatal("Scaled changed the arrival intensity")
	}
	if _, err := cfg.Scaled(0); err == nil {
		t.Fatal("zero factor accepted")
	}
	if _, err := cfg.Scaled(1.5); err == nil {
		t.Fatal("factor above 1 accepted")
	}
}

func TestWithIntensity(t *testing.T) {
	cfg := DefaultGenConfig()
	heavy, err := cfg.WithIntensity(4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(heavy.MeanInterarrival-cfg.MeanInterarrival/4) > 1e-15 {
		t.Fatalf("heavy interarrival = %v", heavy.MeanInterarrival)
	}
	if _, err := cfg.WithIntensity(0); err == nil {
		t.Fatal("zero intensity accepted")
	}
	if _, err := cfg.WithIntensity(math.Inf(1)); err == nil {
		t.Fatal("infinite intensity accepted")
	}
}

func TestTraceValidateCatchesCorruption(t *testing.T) {
	tr, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-order arrival.
	bad := &Trace{Files: tr.Files, Requests: []Request{{Arrival: 5, FileID: 0}, {Arrival: 1, FileID: 0}}}
	if bad.Validate() == nil {
		t.Fatal("out-of-order requests accepted")
	}
	// Unknown file.
	bad = &Trace{Files: tr.Files, Requests: []Request{{Arrival: 1, FileID: 99999}}}
	if bad.Validate() == nil {
		t.Fatal("unknown file reference accepted")
	}
	// Negative arrival.
	bad = &Trace{Files: tr.Files, Requests: []Request{{Arrival: -1, FileID: 0}}}
	if bad.Validate() == nil {
		t.Fatal("negative arrival accepted")
	}
}

func TestComputeStatsEmptyRequests(t *testing.T) {
	tr := &Trace{Files: FileSet{{ID: 0, SizeMB: 1}}}
	st, err := tr.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 0 || st.AccessTheta != 1 {
		t.Fatalf("empty-request stats: %+v", st)
	}
}

func TestAliasSamplerMatchesDistribution(t *testing.T) {
	weights := []float64{5, 3, 2, 0, 1}
	s, err := NewAliasSampler(weights)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	rng := rand.New(rand.NewSource(7))
	const draws = 200000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[s.Sample(rng)]++
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	for i, w := range weights {
		want := w / sum
		got := float64(counts[i]) / draws
		if math.Abs(got-want) > 0.01 {
			t.Errorf("index %d: frequency %v, want %v", i, got, want)
		}
	}
	if counts[3] != 0 {
		t.Errorf("zero-weight index sampled %d times", counts[3])
	}
}

func TestAliasSamplerValidation(t *testing.T) {
	if _, err := NewAliasSampler(nil); err == nil {
		t.Fatal("empty weights accepted")
	}
	if _, err := NewAliasSampler([]float64{0, 0}); err == nil {
		t.Fatal("all-zero weights accepted")
	}
	if _, err := NewAliasSampler([]float64{1, -1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := NewAliasSampler([]float64{1, math.NaN()}); err == nil {
		t.Fatal("NaN weight accepted")
	}
	if _, err := NewAliasSampler([]float64{1, math.Inf(1)}); err == nil {
		t.Fatal("Inf weight accepted")
	}
}

// Property: the alias table always covers every positive-weight index and
// sampling never returns an out-of-range index.
func TestPropertyAliasSamplerInRange(t *testing.T) {
	f := func(raw []float64, seed int64) bool {
		var weights []float64
		for _, w := range raw {
			w = math.Abs(w)
			if math.IsNaN(w) || math.IsInf(w, 0) {
				continue
			}
			weights = append(weights, math.Mod(w, 1000))
		}
		var sum float64
		for _, w := range weights {
			sum += w
		}
		if len(weights) == 0 || sum == 0 {
			return true
		}
		s, err := NewAliasSampler(weights)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			idx := s.Sample(rng)
			if idx < 0 || idx >= len(weights) {
				return false
			}
			if weights[idx] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

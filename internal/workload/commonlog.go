package workload

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// ParseCommonLog converts an HTTP server access log in Common Log Format —
// the format the WorldCup98 trace is distributed in (after its binary
// records are textualized) — into a Trace:
//
//	host ident user [02/May/1998:21:30:17 +0000] "GET /path HTTP/1.0" 200 1839
//
// Each distinct request path becomes a file; its size is the largest byte
// count observed for it (Common Log byte counts are response sizes, so the
// maximum approximates the full object); per-file access rates are set from
// observed counts over the log's span. Arrival times are offsets from the
// first entry. Lines that do not parse are skipped and counted; an error is
// returned only if nothing parses.
func ParseCommonLog(r io.Reader) (*Trace, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	type fileInfo struct {
		id     int
		sizeMB float64
		count  int
	}
	files := make(map[string]*fileInfo)
	var reqs []Request
	var t0 time.Time
	skipped := 0
	lineNo := 0

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ts, path, bytes, ok := parseCommonLogLine(line)
		if !ok {
			skipped++
			continue
		}
		if t0.IsZero() {
			t0 = ts
		}
		offset := ts.Sub(t0).Seconds()
		if offset < 0 {
			// Out-of-order stamps occur in merged logs; clamp rather
			// than reject, keeping the trace time-ordered.
			offset = 0
			if len(reqs) > 0 {
				offset = reqs[len(reqs)-1].Arrival
			}
		}
		if len(reqs) > 0 && offset < reqs[len(reqs)-1].Arrival {
			offset = reqs[len(reqs)-1].Arrival
		}
		fi, found := files[path]
		if !found {
			fi = &fileInfo{id: len(files)}
			files[path] = fi
		}
		sizeMB := float64(bytes) / (1024 * 1024)
		if sizeMB > fi.sizeMB {
			fi.sizeMB = sizeMB
		}
		fi.count++
		reqs = append(reqs, Request{Arrival: offset, FileID: fi.id})
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, err
	}
	if len(reqs) == 0 {
		return nil, skipped, errors.New("workload: no parsable common-log lines")
	}

	span := reqs[len(reqs)-1].Arrival
	if span <= 0 {
		span = 1
	}
	fs := make(FileSet, len(files))
	//simlint:allow maporder -- fi.id values are unique, so every iteration writes a disjoint fs key
	for _, fi := range files {
		size := fi.sizeMB
		if size <= 0 {
			size = 0.0005 // zero-byte responses still occupy a request
		}
		fs[fi.id] = File{
			ID:         fi.id,
			SizeMB:     size,
			AccessRate: float64(fi.count) / span,
		}
	}
	tr := &Trace{Files: fs, Requests: reqs}
	if err := tr.Validate(); err != nil {
		return nil, skipped, fmt.Errorf("workload: converted trace invalid: %w", err)
	}
	return tr, skipped, nil
}

// parseCommonLogLine extracts timestamp, request path, and byte count.
func parseCommonLogLine(line string) (ts time.Time, path string, bytes int64, ok bool) {
	// Timestamp between the first '[' and ']'.
	lb := strings.IndexByte(line, '[')
	rb := strings.IndexByte(line, ']')
	if lb < 0 || rb < lb {
		return time.Time{}, "", 0, false
	}
	stamp := line[lb+1 : rb]
	t, err := time.Parse("02/Jan/2006:15:04:05 -0700", stamp)
	if err != nil {
		// Some logs omit the zone.
		t, err = time.Parse("02/Jan/2006:15:04:05", stamp)
		if err != nil {
			return time.Time{}, "", 0, false
		}
	}
	// Request line between the first pair of double quotes after ']'.
	rest := line[rb+1:]
	q1 := strings.IndexByte(rest, '"')
	if q1 < 0 {
		return time.Time{}, "", 0, false
	}
	q2 := strings.IndexByte(rest[q1+1:], '"')
	if q2 < 0 {
		return time.Time{}, "", 0, false
	}
	reqLine := rest[q1+1 : q1+1+q2]
	parts := strings.Fields(reqLine)
	if len(parts) < 2 {
		return time.Time{}, "", 0, false
	}
	path = parts[1]
	// Status and bytes follow the closing quote.
	tail := strings.Fields(rest[q1+q2+2:])
	if len(tail) < 2 {
		return time.Time{}, "", 0, false
	}
	if tail[1] == "-" {
		return t, path, 0, true
	}
	n, err := strconv.ParseInt(tail[1], 10, 64)
	if err != nil || n < 0 {
		return time.Time{}, "", 0, false
	}
	return t, path, n, true
}

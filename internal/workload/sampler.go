package workload

import (
	"errors"
	"math"
	"math/rand"
)

// AliasSampler draws indices from an arbitrary discrete distribution in
// O(1) per sample using Vose's alias method. Trace generation draws one file
// per request — 1.5 million draws per simulated day — so constant-time
// sampling matters.
type AliasSampler struct {
	prob  []float64
	alias []int
}

// NewAliasSampler builds a sampler over weights (not necessarily
// normalized). All weights must be non-negative and finite with a positive
// sum.
func NewAliasSampler(weights []float64) (*AliasSampler, error) {
	n := len(weights)
	if n == 0 {
		return nil, errors.New("workload: empty weight vector")
	}
	var sum float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, errors.New("workload: weights must be non-negative and finite")
		}
		sum += w
	}
	if sum <= 0 {
		return nil, errors.New("workload: weights sum to zero")
	}
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
	}
	s := &AliasSampler{
		prob:  make([]float64, n),
		alias: make([]int, n),
	}
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, p := range scaled {
		if p < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		s.prob[l] = scaled[l]
		s.alias[l] = g
		scaled[g] = scaled[g] + scaled[l] - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	for _, g := range large {
		s.prob[g] = 1
		s.alias[g] = g
	}
	for _, l := range small {
		// Only reachable through floating-point residue; treat as 1.
		s.prob[l] = 1
		s.alias[l] = l
	}
	return s, nil
}

// N returns the support size.
func (s *AliasSampler) N() int { return len(s.prob) }

// Sample draws one index using the provided source.
func (s *AliasSampler) Sample(rng *rand.Rand) int {
	i := rng.Intn(len(s.prob))
	if rng.Float64() < s.prob[i] {
		return i
	}
	return s.alias[i]
}

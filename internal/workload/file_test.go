package workload

import (
	"math"
	"testing"
)

func TestFileLoad(t *testing.T) {
	f := File{ID: 1, SizeMB: 2.5, AccessRate: 4}
	if got := f.Load(); got != 10 {
		t.Fatalf("Load = %v, want 10", got)
	}
}

func TestFileSetValidate(t *testing.T) {
	good := FileSet{{ID: 0, SizeMB: 1}, {ID: 1, SizeMB: 2, AccessRate: 3}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
	cases := []struct {
		name string
		fs   FileSet
	}{
		{"empty", FileSet{}},
		{"zero size", FileSet{{ID: 0, SizeMB: 0}}},
		{"negative size", FileSet{{ID: 0, SizeMB: -1}}},
		{"NaN size", FileSet{{ID: 0, SizeMB: math.NaN()}}},
		{"inf size", FileSet{{ID: 0, SizeMB: math.Inf(1)}}},
		{"negative rate", FileSet{{ID: 0, SizeMB: 1, AccessRate: -1}}},
		{"NaN rate", FileSet{{ID: 0, SizeMB: 1, AccessRate: math.NaN()}}},
		{"duplicate id", FileSet{{ID: 3, SizeMB: 1}, {ID: 3, SizeMB: 2}}},
	}
	for _, tc := range cases {
		if err := tc.fs.Validate(); err == nil {
			t.Errorf("%s: invalid set accepted", tc.name)
		}
	}
}

func TestTotals(t *testing.T) {
	fs := FileSet{
		{ID: 0, SizeMB: 1, AccessRate: 2},
		{ID: 1, SizeMB: 3, AccessRate: 4},
	}
	if got := fs.TotalLoad(); got != 2+12 {
		t.Fatalf("TotalLoad = %v, want 14", got)
	}
	if got := fs.TotalSizeMB(); got != 4 {
		t.Fatalf("TotalSizeMB = %v, want 4", got)
	}
}

func TestSortBySizeAscending(t *testing.T) {
	fs := FileSet{
		{ID: 2, SizeMB: 3},
		{ID: 0, SizeMB: 1},
		{ID: 5, SizeMB: 2},
		{ID: 1, SizeMB: 2}, // tie with ID 5: lower ID first
	}
	fs.SortBySizeAscending()
	wantIDs := []int{0, 1, 5, 2}
	for i, w := range wantIDs {
		if fs[i].ID != w {
			t.Fatalf("position %d: ID %d, want %d (%v)", i, fs[i].ID, w, fs)
		}
	}
}

func TestSortByRateDescending(t *testing.T) {
	fs := FileSet{
		{ID: 0, SizeMB: 1, AccessRate: 2},
		{ID: 1, SizeMB: 1, AccessRate: 9},
		{ID: 3, SizeMB: 1, AccessRate: 2}, // tie with ID 0: lower ID first
	}
	fs.SortByRateDescending()
	wantIDs := []int{1, 0, 3}
	for i, w := range wantIDs {
		if fs[i].ID != w {
			t.Fatalf("position %d: ID %d, want %d", i, fs[i].ID, w)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	fs := FileSet{{ID: 0, SizeMB: 1}}
	c := fs.Clone()
	c[0].SizeMB = 99
	if fs[0].SizeMB != 1 {
		t.Fatal("Clone shares backing storage")
	}
}

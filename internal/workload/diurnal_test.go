package workload

import (
	"math"
	"testing"
)

// TestDiurnalProfileModulatesRate verifies the generated arrival process
// actually follows the configured profile: the peak hour must see several
// times the valley hour's requests.
func TestDiurnalProfileModulatesRate(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.NumRequests = 200000
	cfg.DiurnalProfile = DefaultDiurnalProfile()
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	period := float64(cfg.NumRequests) * cfg.MeanInterarrival
	bucketLen := period / 24
	counts := make([]int, 24)
	for _, r := range tr.Requests {
		b := int(r.Arrival/bucketLen) % 24
		if b >= 0 && b < 24 {
			counts[b]++
		}
	}
	// Bucket 12 (multiplier 2.0) vs bucket 3 (multiplier 0.10).
	if counts[3] == 0 {
		t.Fatal("valley bucket empty")
	}
	ratio := float64(counts[12]) / float64(counts[3])
	// Normalized multipliers: 2.0/1.019 vs 0.1/1.019 -> ratio 20.
	if ratio < 12 || ratio > 30 {
		t.Fatalf("peak/valley ratio = %v, want ≈20", ratio)
	}
}

// TestDiurnalPreservesCalibration: the normalized profile must keep the
// overall mean inter-arrival at the configured value.
func TestDiurnalPreservesCalibration(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.NumRequests = 150000
	cfg.DiurnalProfile = DefaultDiurnalProfile()
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := tr.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.MeanInterarrival-cfg.MeanInterarrival)/cfg.MeanInterarrival > 0.05 {
		t.Fatalf("mean inter-arrival %v drifted from %v", st.MeanInterarrival, cfg.MeanInterarrival)
	}
}

// TestChurnRotatesHotSet verifies the scoped churn: the most-requested file
// changes across phases, but only files inside the scope ever become hot.
func TestChurnRotatesHotSet(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.NumFiles = 1000
	cfg.NumRequests = 120000
	cfg.PhaseSeconds = float64(cfg.NumRequests) * cfg.MeanInterarrival / 4 // 4 phases
	cfg.PhaseRotate = 0.25
	cfg.PhaseScope = 0.5
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	phaseLen := cfg.PhaseSeconds
	topPerPhase := make([]int, 4)
	for phase := 0; phase < 4; phase++ {
		counts := make(map[int]int)
		for _, r := range tr.Requests {
			if int(r.Arrival/phaseLen) == phase {
				counts[r.FileID]++
			}
		}
		best, bestN := -1, 0
		for id, n := range counts {
			if n > bestN {
				best, bestN = id, n
			}
		}
		topPerPhase[phase] = best
	}
	changed := false
	for p := 1; p < 4; p++ {
		if topPerPhase[p] != topPerPhase[0] {
			changed = true
		}
	}
	if !changed {
		t.Fatalf("hot file never rotated: %v", topPerPhase)
	}
	scope := int(cfg.PhaseScope * float64(cfg.NumFiles))
	for p, id := range topPerPhase {
		if id >= scope {
			t.Fatalf("phase %d hottest file %d outside churn scope %d", p, id, scope)
		}
	}
}

// TestChurnDisabledIsStable: without churn, the hottest file is the same in
// every quarter of the trace.
func TestChurnDisabledIsStable(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.NumFiles = 500
	cfg.NumRequests = 80000
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	quarter := tr.Requests[len(tr.Requests)-1].Arrival / 4
	var tops []int
	for q := 0; q < 4; q++ {
		counts := make(map[int]int)
		for _, r := range tr.Requests {
			if int(r.Arrival/quarter) == q {
				counts[r.FileID]++
			}
		}
		best, bestN := -1, 0
		for id, n := range counts {
			if n > bestN {
				best, bestN = id, n
			}
		}
		tops = append(tops, best)
	}
	for _, id := range tops {
		if id != tops[0] {
			t.Fatalf("hot file drifted without churn: %v", tops)
		}
	}
}

package telemetry

import (
	"math"
	"sync/atomic"
)

// Live is the lock-free snapshot a running simulation publishes for the ops
// plane (/metrics). The simulation goroutine is the only writer; HTTP
// handlers on other goroutines read via Snapshot.
//
// Consistency is a seqlock over individually-atomic words: the writer bumps
// seq odd, stores the fields, bumps seq even; readers retry until seq is
// stable and even around their loads. Publishing costs a handful of atomic
// stores and zero allocations, and a nil *Live is a valid no-op sink, so
// the ops-off hot path stays one nil check with zero allocations — the same
// contract every other telemetry handle obeys.
//
// Two publish cadences keep the hot path honest: Tick carries only values
// the simulation already holds in registers (virtual time, event and request
// counters) and may be called per completion; PublishEpoch carries the
// aggregates that require walking the disks (energy, AFR, spin states,
// queue depths) and fires on epoch boundaries, where the simulation already
// does that walk for the time-series sampler. /metrics therefore serves
// request-fresh counters and epoch-fresh gauges, which the DESIGN §14
// consistency model documents.
type Live struct {
	seq        atomic.Uint64
	simTime    atomic.Uint64 // math.Float64bits
	fired      atomic.Uint64
	requests   atomic.Uint64
	arrivals   atomic.Uint64
	energyJ    atomic.Uint64 // math.Float64bits
	afrPct     atomic.Uint64 // math.Float64bits, worst disk
	queueDepth atomic.Uint64
	disksHigh  atomic.Uint64
	disksLow   atomic.Uint64
	epoch      atomic.Uint64
}

// LiveSnapshot is one consistent reading of a Live.
type LiveSnapshot struct {
	// Tick-fresh (updated per completed request).
	SimSeconds float64
	Events     uint64
	Requests   uint64
	Arrivals   uint64
	// Epoch-fresh (updated on epoch boundaries).
	EnergyJ     float64
	WorstAFRPct float64
	QueueDepth  uint64
	DisksHigh   uint64
	DisksLow    uint64
	Epoch       uint64
}

// NewLive returns an empty live view ready to hand to a Recorder.
func NewLive() *Live { return &Live{} }

// Tick publishes the cheap per-request counters. Single writer only.
func (l *Live) Tick(simSeconds float64, fired, requests, arrivals uint64) {
	if l == nil {
		return
	}
	l.seq.Add(1)
	l.simTime.Store(math.Float64bits(simSeconds))
	l.fired.Store(fired)
	l.requests.Store(requests)
	l.arrivals.Store(arrivals)
	l.seq.Add(1)
}

// PublishEpoch publishes the disk-walk aggregates. Single writer only.
func (l *Live) PublishEpoch(epoch uint64, energyJ, worstAFRPct float64, queueDepth, disksHigh, disksLow uint64) {
	if l == nil {
		return
	}
	l.seq.Add(1)
	l.epoch.Store(epoch)
	l.energyJ.Store(math.Float64bits(energyJ))
	l.afrPct.Store(math.Float64bits(worstAFRPct))
	l.queueDepth.Store(queueDepth)
	l.disksHigh.Store(disksHigh)
	l.disksLow.Store(disksLow)
	l.seq.Add(1)
}

// Snapshot returns a consistent view. Safe from any goroutine; a nil live
// view yields the zero snapshot.
func (l *Live) Snapshot() LiveSnapshot {
	if l == nil {
		return LiveSnapshot{}
	}
	var s LiveSnapshot
	for {
		s1 := l.seq.Load()
		if s1%2 != 0 {
			continue
		}
		s.SimSeconds = math.Float64frombits(l.simTime.Load())
		s.Events = l.fired.Load()
		s.Requests = l.requests.Load()
		s.Arrivals = l.arrivals.Load()
		s.EnergyJ = math.Float64frombits(l.energyJ.Load())
		s.WorstAFRPct = math.Float64frombits(l.afrPct.Load())
		s.QueueDepth = l.queueDepth.Load()
		s.DisksHigh = l.disksHigh.Load()
		s.DisksLow = l.disksLow.Load()
		s.Epoch = l.epoch.Load()
		if l.seq.Load() == s1 {
			return s
		}
	}
}

package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecisionCodec feeds arbitrary bytes through ReadDecisionNDJSON. The
// parser must never panic, and whenever it accepts an input, the log must
// survive a WriteNDJSON/ReadDecisionNDJSON round trip record-identically —
// counterfactual replay addresses decisions by sequence number through this
// codec, so a lossy round trip would silently replay the wrong decision.
func FuzzDecisionCodec(f *testing.F) {
	f.Add([]byte(`{"seq":1,"t":10.5,"epoch":2,"kind":"spin-down","cause":"idle-threshold","disk":3,"predicted_j":12.5}` + "\n" +
		`{"seq":2,"t":11,"kind":"spin-up","disk":3,"observed":true,"observed_j":-4.25,"wake_requests":2}` + "\n"))
	f.Add([]byte(`{"seq":1,"t":0.125,"kind":"retry","cause":"deadline","file_id":7,"from":1,"to":2}` + "\n"))
	f.Add([]byte(`{"seq":1,"kind":"hedge","overridden":"skip"}` + "\n\n" + `{"seq":2,"kind":"failover"}` + "\n"))
	f.Add([]byte(`{"seq":2,"kind":"migrate"}` + "\n"))     // wrong first seq
	f.Add([]byte(`{"seq":1}` + "\n" + `{"seq":3}` + "\n")) // gap
	f.Add([]byte(`{"seq":1,"t":"not a number"}` + "\n"))   // type mismatch
	f.Add([]byte(`{"seq":1,"t":1e999}` + "\n"))            // float overflow
	f.Add([]byte("not json\n"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := ReadDecisionNDJSON(bytes.NewReader(data))
		if err != nil {
			if l != nil {
				t.Fatal("ReadDecisionNDJSON returned both a log and an error")
			}
			return
		}
		// Accepted input: sequence numbers must be dense from 1 and the log
		// must round-trip exactly.
		for i, d := range l.Records() {
			if d.Seq != uint64(i)+1 {
				t.Fatalf("record %d accepted with seq %d", i, d.Seq)
			}
		}
		var buf strings.Builder
		if err := l.WriteNDJSON(&buf); err != nil {
			t.Fatalf("WriteNDJSON of an accepted log failed: %v", err)
		}
		back, err := ReadDecisionNDJSON(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("re-reading the written log failed: %v", err)
		}
		if back.Len() != l.Len() {
			t.Fatalf("round trip changed length: %d vs %d", l.Len(), back.Len())
		}
		for i := range l.Records() {
			if l.Records()[i] != back.Records()[i] {
				t.Fatalf("record %d changed in round trip:\n%+v\nvs\n%+v",
					i+1, l.Records()[i], back.Records()[i])
			}
		}
	})
}

package telemetry

import (
	"bytes"
	"testing"
)

// parseTrace (shared with recorder_test.go) decodes the tracer's output,
// failing the test on invalid JSON.

func coverage(t *testing.T, events []map[string]any) map[string]any {
	t.Helper()
	last := events[len(events)-1]
	if last["name"] != "trace_coverage" {
		t.Fatalf("last record is %v, want trace_coverage", last["name"])
	}
	return last["args"].(map[string]any)
}

// The trace must stay valid JSON when the event cap truncates it, and the
// coverage trailer must account exactly for what was seen vs. written.
func TestChromeTracerValidJSONUnderCap(t *testing.T) {
	var buf bytes.Buffer
	tr := NewChromeTracer(&buf, 1, 3)
	for i := 0; i < 10; i++ {
		tr.EventFired(uint64(i), "ev", float64(i), 1500)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	events := parseTrace(t, buf.Bytes())
	cov := coverage(t, events)
	if cov["fired_seen"] != 10.0 || cov["records_written"] != 3.0 || cov["dropped_at_cap"] != 7.0 {
		t.Fatalf("coverage wrong: %v", cov)
	}
	if tr.Written() != 3 {
		t.Fatalf("Written() = %d, want 3", tr.Written())
	}
	// 5 metadata headers + 3 events + 1 coverage trailer.
	if len(events) != 9 {
		t.Fatalf("got %d records, want 9", len(events))
	}
}

// Sampling admits every Nth event of each kind independently.
func TestChromeTracerSampling(t *testing.T) {
	var buf bytes.Buffer
	tr := NewChromeTracer(&buf, 3, 0)
	for i := 0; i < 9; i++ {
		tr.EventFired(uint64(i), "f", float64(i), 100)
	}
	for i := 0; i < 4; i++ {
		tr.EventScheduled(uint64(i), "s", float64(i+1), float64(i))
	}
	tr.EventCanceled(0, "c", 1)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	events := parseTrace(t, buf.Bytes())
	cov := coverage(t, events)
	// fired: indices 0,3,6 → 3; scheduled: 0,3 → 2; canceled: 0 → 1.
	if cov["records_written"] != 6.0 {
		t.Fatalf("sampled records = %v, want 6", cov["records_written"])
	}
	if cov["sample_every"] != 3.0 {
		t.Fatalf("sample_every = %v", cov["sample_every"])
	}
}

// An empty trace (no events at all) still closes to valid JSON with the
// headers and trailer.
func TestChromeTracerEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	tr := NewChromeTracer(&buf, 1, 0)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	events := parseTrace(t, buf.Bytes())
	cov := coverage(t, events)
	if cov["records_written"] != 0.0 || cov["dropped_at_cap"] != 0.0 {
		t.Fatalf("empty coverage wrong: %v", cov)
	}
}

// Event labels land as record names, with empty labels defaulting; virtual
// timestamps are microseconds.
func TestChromeTracerRecordShape(t *testing.T) {
	var buf bytes.Buffer
	tr := NewChromeTracer(&buf, 1, 0)
	tr.EventFired(7, "arrival", 1.5, 2500)
	tr.EventScheduled(8, "", 2.5, 1.5)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	events := parseTrace(t, buf.Bytes())
	var fired, sched map[string]any
	for _, e := range events {
		switch e["name"] {
		case "arrival":
			fired = e
		case "event":
			sched = e
		}
	}
	if fired == nil || fired["ph"] != "X" || fired["ts"] != 1.5e6 {
		t.Fatalf("fired record wrong: %v", fired)
	}
	if fired["dur"] != 2.5 { // 2500 ns → 2.5 µs
		t.Fatalf("fired dur = %v, want 2.5", fired["dur"])
	}
	if sched == nil || sched["ph"] != "i" {
		t.Fatalf("scheduled record with defaulted label wrong: %v", sched)
	}
}

// Close is idempotent and writing after Close is a silent no-op, so a
// truncated-then-closed trace cannot be corrupted by stragglers.
func TestChromeTracerCloseIdempotent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewChromeTracer(&buf, 1, 0)
	tr.EventFired(1, "x", 1, 1)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	size := buf.Len()
	tr.EventFired(2, "y", 2, 1)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != size {
		t.Fatal("writes after Close changed the trace")
	}
	parseTrace(t, buf.Bytes())
}

// A nil tracer is a valid no-op sink.
func TestChromeTracerNilSafe(t *testing.T) {
	var tr *ChromeTracer
	tr.EventFired(1, "x", 1, 1)
	tr.EventScheduled(1, "x", 2, 1)
	tr.EventCanceled(1, "x", 1)
	if tr.Written() != 0 {
		t.Fatal("nil tracer wrote records")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

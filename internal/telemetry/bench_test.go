package telemetry

import (
	"io"
	"testing"
)

// The hot-path handle operations, live and disabled. The nil variants are
// the disabled-telemetry cost: one predictable branch, zero allocations.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("g")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h", LatencyBounds())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) * 1e-3)
	}
}

func BenchmarkHistogramObserveNil(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) * 1e-3)
	}
}

func BenchmarkChromeTracerEventFired(b *testing.B) {
	tr := NewChromeTracer(io.Discard, 1, b.N+1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.EventFired(uint64(i), "service", float64(i)*1e-3, 1500)
	}
}

func BenchmarkSeriesWrite(b *testing.B) {
	w := NewSeriesWriter(io.Discard, io.Discard)
	s := DiskSample{T: 1.5, Epoch: 3, Disk: 2, Utilization: 0.4, TempC: 47.2,
		Speed: "high", Transitions: 9, AFRPct: 11.5, QueueDepth: 3, EnergyJ: 1234.5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.Write(s); err != nil {
			b.Fatal(err)
		}
	}
}

package telemetry

import (
	"bufio"
	"fmt"
	"io"
)

// ChromeTracer renders the DES event stream as Chrome trace_event JSON
// (the JSON-array format), loadable in chrome://tracing and Perfetto.
//
// The mapping from simulator to trace model:
//
//   - ts is VIRTUAL time in microseconds — the trace timeline is the
//     simulation's clock, not the wall clock.
//   - Fired events are complete ("X") slices on tid 1 whose dur is the
//     handler's WALL-clock execution time in microseconds (floored at 1 so
//     slices stay visible), which makes hot handlers literally wider.
//   - Schedules and cancellations are instant ("i") events on tids 2 and 3.
//   - Logical spans (request lifetimes) are complete ("X") slices on tid 4
//     whose dur is VIRTUAL elapsed time — a request's slice spans arrival
//     to completion on the simulation clock.
//
// Traces of large runs are bounded two ways: SampleEvery records only every
// Nth event of each kind, and MaxEvents hard-caps the file; both are
// reported in the trailing metadata so a truncated trace is self-describing.
//
// ChromeTracer implements the des.Tracer interface structurally (the
// signatures use only builtin types), so this package has no dependency on
// the engine. A nil *ChromeTracer is a valid no-op sink.
type ChromeTracer struct {
	w           *bufio.Writer
	sampleEvery uint64
	maxEvents   int

	written int
	dropped uint64
	seen    [4]uint64 // per-kind observation counts for sampling
	closed  bool
}

// Event-kind indexes into ChromeTracer.seen.
const (
	kindFired = iota
	kindScheduled
	kindCanceled
	kindSpan
)

// NewChromeTracer starts a trace on w. sampleEvery < 1 means record every
// event; maxEvents < 1 means the default cap of 1,000,000 records.
func NewChromeTracer(w io.Writer, sampleEvery, maxEvents int) *ChromeTracer {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	if maxEvents < 1 {
		maxEvents = 1_000_000
	}
	t := &ChromeTracer{
		w:           bufio.NewWriterSize(w, 64<<10),
		sampleEvery: uint64(sampleEvery),
		maxEvents:   maxEvents,
	}
	t.w.WriteString("[\n")
	t.meta(`{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"arraysim (virtual time)"}}`)
	t.meta(`{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"fired"}}`)
	t.meta(`{"name":"thread_name","ph":"M","pid":1,"tid":2,"args":{"name":"scheduled"}}`)
	t.meta(`{"name":"thread_name","ph":"M","pid":1,"tid":3,"args":{"name":"canceled"}}`)
	t.meta(`{"name":"thread_name","ph":"M","pid":1,"tid":4,"args":{"name":"spans"}}`)
	return t
}

func (t *ChromeTracer) meta(line string) {
	t.w.WriteString(line)
	t.w.WriteString(",\n")
}

// admit applies sampling and the size cap for one event of the given kind.
func (t *ChromeTracer) admit(kind int) bool {
	if t == nil || t.closed {
		return false
	}
	t.seen[kind]++
	if (t.seen[kind]-1)%t.sampleEvery != 0 {
		return false
	}
	if t.written >= t.maxEvents {
		t.dropped++
		return false
	}
	t.written++
	return true
}

func label(l string) string {
	if l == "" {
		return "event"
	}
	return l
}

// EventFired records one fired event: at is the virtual firing time in
// seconds, wallNanos the handler's wall-clock execution time.
func (t *ChromeTracer) EventFired(id uint64, l string, at float64, wallNanos int64) {
	if !t.admit(kindFired) {
		return
	}
	dur := float64(wallNanos) / 1e3
	if dur < 1 {
		dur = 1
	}
	fmt.Fprintf(t.w, `{"name":%q,"ph":"X","pid":1,"tid":1,"ts":%.3f,"dur":%.3f,"args":{"seq":%d}}`+",\n",
		label(l), at*1e6, dur, id)
}

// EventScheduled records that an event was scheduled at virtual time `now`
// to fire at virtual time `at`.
func (t *ChromeTracer) EventScheduled(id uint64, l string, at, now float64) {
	if !t.admit(kindScheduled) {
		return
	}
	fmt.Fprintf(t.w, `{"name":%q,"ph":"i","s":"t","pid":1,"tid":2,"ts":%.3f,"args":{"seq":%d,"fires_at_us":%.3f}}`+",\n",
		label(l), now*1e6, id, at*1e6)
}

// EventCanceled records a cancellation at virtual time now.
func (t *ChromeTracer) EventCanceled(id uint64, l string, now float64) {
	if !t.admit(kindCanceled) {
		return
	}
	fmt.Fprintf(t.w, `{"name":%q,"ph":"i","s":"t","pid":1,"tid":3,"ts":%.3f,"args":{"seq":%d}}`+",\n",
		label(l), now*1e6, id)
}

// Span records a logical interval [start, end] in virtual seconds as a
// complete slice; dur is virtual elapsed time (floored at 1 µs so slices
// stay visible). It implements the des.SpanTracer extension structurally.
func (t *ChromeTracer) Span(l string, start, end float64) {
	if !t.admit(kindSpan) {
		return
	}
	dur := (end - start) * 1e6
	if dur < 1 {
		dur = 1
	}
	fmt.Fprintf(t.w, `{"name":%q,"ph":"X","pid":1,"tid":4,"ts":%.3f,"dur":%.3f}`+",\n",
		label(l), start*1e6, dur)
}

// Written returns the number of event records emitted so far.
func (t *ChromeTracer) Written() int {
	if t == nil {
		return 0
	}
	return t.written
}

// Close writes the trailing coverage metadata and the closing bracket and
// flushes. It does not close the underlying writer.
func (t *ChromeTracer) Close() error {
	if t == nil || t.closed {
		return nil
	}
	t.closed = true
	// Final metadata record: how much of the stream this trace covers.
	// No trailing comma — it is the last element of the JSON array.
	fmt.Fprintf(t.w,
		`{"name":"trace_coverage","ph":"M","pid":1,"tid":0,"args":{"fired_seen":%d,"scheduled_seen":%d,"canceled_seen":%d,"spans_seen":%d,"records_written":%d,"dropped_at_cap":%d,"sample_every":%d}}`+"\n",
		t.seen[kindFired], t.seen[kindScheduled], t.seen[kindCanceled], t.seen[kindSpan], t.written, t.dropped, t.sampleEvery)
	t.w.WriteString("]\n")
	return t.w.Flush()
}

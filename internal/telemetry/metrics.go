// Package telemetry is the simulator's observability layer: a lightweight
// metrics registry (counters, gauges, fixed-bucket histograms), per-disk
// time-series export (NDJSON and CSV), a Chrome trace_event writer for the
// DES event stream, and structured progress logging.
//
// The package is built around one invariant: instrumentation must cost
// nothing when it is off. Every handle type (*Counter, *Gauge, *Histogram,
// *Recorder, *Progress) treats the nil pointer as a fully valid no-op sink —
// a hot path updates its pre-bound handles unconditionally and pays exactly
// one nil check and zero allocations per update when telemetry is disabled.
// Telemetry is also observationally pure: it only reads simulation state
// through snapshot accessors and never schedules events, so enabling it
// cannot change simulation results.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Counter is a monotonically increasing event count. The zero value is ready
// to use; a nil *Counter is a valid no-op sink.
type Counter struct {
	name string
	v    uint64
}

// Inc adds one to the counter. It is a no-op on a nil receiver.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n to the counter. It is a no-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 for a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value-wins instantaneous measurement. A nil *Gauge is a
// valid no-op sink.
type Gauge struct {
	name string
	v    float64
}

// Set records the gauge's current value. It is a no-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the last value set (0 for a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bucket distribution. Bucket i counts observations
// v <= Bounds[i]; one implicit overflow bucket counts the rest. Fixed bounds
// keep Observe allocation-free and O(log buckets). A nil *Histogram is a
// valid no-op sink.
type Histogram struct {
	name   string
	bounds []float64 // strictly increasing upper bounds
	counts []uint64  // len(bounds)+1; last is the overflow bucket
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// Observe records one value. It is a no-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of observations (0 for a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all observations (0 for a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the mean observation (0 when empty or nil).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Max returns the largest observation (0 when empty or nil).
func (h *Histogram) Max() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile estimates the q-th quantile (q in [0,1]) by linear interpolation
// within the bucket holding the target rank. The first bucket's lower edge is
// the observed minimum and the overflow bucket's upper edge the observed
// maximum, so estimates never leave the observed range; q <= 0 returns the
// minimum and q >= 1 the maximum exactly. Empty and nil histograms return 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := q * float64(h.count)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			lo, hi := h.bucketEdges(i)
			v := lo + (hi-lo)*(target-cum)/float64(c)
			return math.Max(h.min, math.Min(h.max, v))
		}
		cum = next
	}
	return h.max
}

// bucketEdges returns bucket i's value range, clamped to the observed
// min/max at the two open ends.
func (h *Histogram) bucketEdges(i int) (lo, hi float64) {
	switch {
	case i == 0:
		return h.min, math.Max(h.min, math.Min(h.bounds[0], h.max))
	case i == len(h.bounds):
		return math.Max(h.bounds[i-1], h.min), h.max
	default:
		return math.Max(h.bounds[i-1], h.min), math.Min(h.bounds[i], h.max)
	}
}

// LatencyBounds returns the fixed bucket bounds used for response-time
// histograms: a 1-2.5-5 decade ladder from 100 µs to 100 s.
func LatencyBounds() []float64 {
	return []float64{
		1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3,
		1e-2, 2.5e-2, 5e-2,
		1e-1, 2.5e-1, 5e-1,
		1, 2.5, 5, 10, 25, 50, 100,
	}
}

// QueueDepthBounds returns the fixed bucket bounds used for queue-depth
// histograms: 0 plus powers of two up to 16384.
func QueueDepthBounds() []float64 {
	return []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384}
}

// Registry holds named metrics. Look up a handle once outside the hot loop
// and update it directly; lookups on a nil *Registry return nil handles, so
// the same binding code serves both enabled and disabled telemetry.
//
// A Registry is not goroutine-safe: the simulator is single-threaded and
// parallel sweep cells each get their own registry.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil (no-op) handle.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use. Bounds must be strictly increasing; they are ignored when
// the histogram already exists. A nil registry returns a nil (no-op) handle.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if h, ok := r.hists[name]; ok {
		return h
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not strictly increasing at %d", name, i))
		}
	}
	h := &Histogram{
		name:   name,
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	r.hists[name] = h
	return h
}

// histogramJSON is the dump schema of one histogram: counts[i] pairs with
// bounds[i]; the final extra count is the overflow bucket. P50/P95/P99/P999
// are interpolated quantile estimates (see Histogram.Quantile); Max is the
// exact observed maximum.
type histogramJSON struct {
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	P50    float64   `json:"p50"`
	P95    float64   `json:"p95"`
	P99    float64   `json:"p99"`
	P999   float64   `json:"p999"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
}

// WriteJSON dumps the registry as a single indented JSON object with
// deterministic (sorted) key order. A nil registry writes an empty object.
func (r *Registry) WriteJSON(w io.Writer) error {
	doc := struct {
		Counters   map[string]uint64        `json:"counters"`
		Gauges     map[string]float64       `json:"gauges"`
		Histograms map[string]histogramJSON `json:"histograms"`
	}{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]histogramJSON{},
	}
	if r != nil {
		for name, c := range r.counters {
			doc.Counters[name] = c.v
		}
		for name, g := range r.gauges {
			doc.Gauges[name] = g.v
		}
		for _, name := range sortedKeys(r.hists) {
			h := r.hists[name]
			doc.Histograms[name] = histogramJSON{
				Count:  h.count,
				Sum:    h.sum,
				Min:    h.min,
				Max:    h.max,
				P50:    h.Quantile(0.50),
				P95:    h.Quantile(0.95),
				P99:    h.Quantile(0.99),
				P999:   h.Quantile(0.999),
				Bounds: h.bounds,
				Counts: h.counts,
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc) // encoding/json sorts map keys
}

// HistogramState is the serializable form of one fixed-bucket histogram.
type HistogramState struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
}

// RegistryState is the serializable form of a Registry, for checkpointing.
//
//simlint:checkpoint-for Registry alias=hists:Histograms
type RegistryState struct {
	Counters   map[string]uint64         `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Histograms map[string]HistogramState `json:"histograms,omitempty"`
}

// State exports every registered metric's current value. A nil registry
// exports nil.
func (r *Registry) State() *RegistryState {
	if r == nil {
		return nil
	}
	st := &RegistryState{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramState, len(r.hists)),
	}
	for name, c := range r.counters {
		st.Counters[name] = c.v
	}
	for name, g := range r.gauges {
		st.Gauges[name] = g.v
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		st.Histograms[name] = HistogramState{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: append([]uint64(nil), h.counts...),
			Count:  h.count,
			Sum:    h.sum,
			Min:    h.min,
			Max:    h.max,
		}
	}
	return st
}

// SetState overwrites (or creates) every metric named in st with its saved
// value. Metrics already registered but absent from st keep their current
// values, so pre-bound handles stay valid across a restore. A nil registry
// or nil state is a no-op.
func (r *Registry) SetState(st *RegistryState) {
	if r == nil || st == nil {
		return
	}
	// Sorted order: Counter/Gauge/Histogram lazily register missing metrics,
	// so the registry's internal registration order stays deterministic.
	for _, name := range sortedKeys(st.Counters) {
		r.Counter(name).v = st.Counters[name]
	}
	for _, name := range sortedKeys(st.Gauges) {
		r.Gauge(name).v = st.Gauges[name]
	}
	for _, name := range sortedKeys(st.Histograms) {
		hs := st.Histograms[name]
		h := r.Histogram(name, hs.Bounds)
		if len(h.counts) == len(hs.Counts) {
			copy(h.counts, hs.Counts)
		}
		h.count, h.sum, h.min, h.max = hs.Count, hs.Sum, hs.Min, hs.Max
	}
}

// sortedKeys returns m's keys in ascending order. Every loop whose body has
// effects beyond writing the ranged key iterates through it, so Go's
// randomized map order can never leak into exported artifacts or registry
// state.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Names returns the sorted names of all registered metrics, for tests and
// diagnostics.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	var names []string
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("a") != c {
		t.Fatal("re-lookup returned a different handle")
	}
	g := r.Gauge("g")
	g.Set(2)
	g.Set(7.5)
	if g.Value() != 7.5 {
		t.Fatalf("gauge = %v, want 7.5", g.Value())
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("a")
	g := r.Gauge("b")
	h := r.Histogram("c", LatencyBounds())
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry returned non-nil handles")
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatal("nil handles accumulated state")
	}
	if r.Names() != nil {
		t.Fatal("nil registry has names")
	}
}

// The zero-overhead invariant: updating disabled (nil) handles must not
// allocate — the hot path pays one nil check per update and nothing else.
func TestNilHandlesDoNotAllocate(t *testing.T) {
	var r *Registry
	c := r.Counter("a")
	g := r.Gauge("b")
	h := r.Histogram("c", LatencyBounds())
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(3.5)
		h.Observe(0.012)
	})
	if allocs != 0 {
		t.Fatalf("nil-handle updates allocated %v times per run, want 0", allocs)
	}
}

// Live handles must not allocate either: fixed buckets mean Observe is
// search-and-increment.
func TestLiveHandlesDoNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	g := r.Gauge("b")
	h := r.Histogram("c", LatencyBounds())
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(3.5)
		h.Observe(0.012)
	})
	if allocs != 0 {
		t.Fatalf("live-handle updates allocated %v times per run, want 0", allocs)
	}
}

func TestHistogramBucketPlacement(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.5, 10, 99, 100, 101, 1e6} {
		h.Observe(v)
	}
	// Bucket i counts v <= bounds[i]; the last bucket is overflow.
	want := []uint64{2, 2, 2, 2}
	for i, w := range want {
		if h.counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, h.counts[i], w, h.counts)
		}
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if h.min != 0.5 || h.max != 1e6 {
		t.Fatalf("min/max = %v/%v, want 0.5/1e6", h.min, h.max)
	}
	if got := h.Mean(); got != h.Sum()/8 {
		t.Fatalf("mean = %v, want %v", got, h.Sum()/8)
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing bounds accepted")
		}
	}()
	NewRegistry().Histogram("bad", []float64{1, 1, 2})
}

func TestDefaultBoundsAreStrictlyIncreasing(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"latency": LatencyBounds(),
		"queue":   QueueDepthBounds(),
	} {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				t.Fatalf("%s bounds not increasing at %d: %v", name, i, bounds)
			}
		}
	}
}

func TestRegistryWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs").Add(3)
	r.Gauge("temp").Set(41.5)
	h := r.Histogram("lat", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters   map[string]uint64 `json:"counters"`
		Gauges     map[string]float64
		Histograms map[string]struct {
			Count  uint64
			Sum    float64
			Bounds []float64
			Counts []uint64
		}
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Counters["reqs"] != 3 {
		t.Fatalf("counters = %v", doc.Counters)
	}
	if doc.Gauges["temp"] != 41.5 {
		t.Fatalf("gauges = %v", doc.Gauges)
	}
	hd := doc.Histograms["lat"]
	if hd.Count != 2 || hd.Sum != 5.5 || len(hd.Counts) != len(hd.Bounds)+1 {
		t.Fatalf("histogram dump = %+v", hd)
	}

	// Deterministic output: two dumps are byte-identical.
	var buf2 bytes.Buffer
	if err := r.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("WriteJSON output not deterministic")
	}
}

func TestNilRegistryWriteJSON(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"counters", "gauges", "histograms"} {
		if _, ok := doc[k]; !ok {
			t.Fatalf("empty dump missing %q key: %s", k, buf.String())
		}
	}
}

func TestRegistryNames(t *testing.T) {
	r := NewRegistry()
	r.Gauge("z")
	r.Counter("a")
	r.Histogram("m", []float64{1})
	got := strings.Join(r.Names(), ",")
	if got != "a,m,z" {
		t.Fatalf("Names = %q, want a,m,z", got)
	}
}

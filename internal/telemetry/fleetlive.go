package telemetry

import (
	"math"
	"sync/atomic"
)

// Array health states the cluster router publishes. Strings rather than an
// enum so the ops plane can emit them verbatim as label values.
const (
	ArrayHealthy  = "healthy"
	ArrayDraining = "draining"
	ArrayEjected  = "ejected"
)

// FleetLive is the fleet-level analogue of Live: a seqlock-guarded snapshot
// the cluster router (the only writer — the whole fleet runs on one engine
// goroutine) publishes for the ops plane. Counters are request-fresh; the
// per-array health rows refresh whenever the router evaluates an array for a
// routing decision. A nil *FleetLive is a valid no-op sink.
type FleetLive struct {
	seq atomic.Uint64

	simTime   atomic.Uint64 // math.Float64bits
	requests  atomic.Uint64
	served    atomic.Uint64
	retries   atomic.Uint64
	hedges    atomic.Uint64
	hedgeWins atomic.Uint64
	failovers atomic.Uint64
	timeouts  atomic.Uint64
	deferred  atomic.Uint64
	shed      atomic.Uint64
	failed    atomic.Uint64
	shocks    atomic.Uint64

	arrays []fleetArraySlot
}

type fleetArraySlot struct {
	health      atomic.Uint64 // 0 healthy, 1 draining, 2 ejected
	backlog     atomic.Uint64
	failedDisks atomic.Uint64
	rebuilding  atomic.Uint64 // bool
	worstAFR    atomic.Uint64 // math.Float64bits
}

// FleetArraySnapshot is one array's row in a FleetSnapshot.
type FleetArraySnapshot struct {
	Health      string
	Backlog     uint64
	FailedDisks uint64
	Rebuilding  bool
	WorstAFRPct float64
}

// FleetSnapshot is one consistent reading of a FleetLive.
type FleetSnapshot struct {
	SimSeconds float64
	Requests   uint64
	Served     uint64
	Retries    uint64
	Hedges     uint64
	HedgeWins  uint64
	Failovers  uint64
	Timeouts   uint64
	Deferred   uint64
	Shed       uint64
	Failed     uint64
	Shocks     uint64
	PerArray   []FleetArraySnapshot
}

// NewFleetLive returns a fleet view with a fixed number of array rows.
func NewFleetLive(arrays int) *FleetLive {
	return &FleetLive{arrays: make([]fleetArraySlot, arrays)}
}

// PublishCounters publishes the router's request-path counters. Single
// writer only.
func (f *FleetLive) PublishCounters(simSeconds float64, requests, served, retries, hedges, hedgeWins, failovers, timeouts, deferred, shed, failed, shocks uint64) {
	if f == nil {
		return
	}
	f.seq.Add(1)
	f.simTime.Store(math.Float64bits(simSeconds))
	f.requests.Store(requests)
	f.served.Store(served)
	f.retries.Store(retries)
	f.hedges.Store(hedges)
	f.hedgeWins.Store(hedgeWins)
	f.failovers.Store(failovers)
	f.timeouts.Store(timeouts)
	f.deferred.Store(deferred)
	f.shed.Store(shed)
	f.failed.Store(failed)
	f.shocks.Store(shocks)
	f.seq.Add(1)
}

// PublishArray refreshes one array's health row. Single writer only; health
// must be one of the Array* constants.
func (f *FleetLive) PublishArray(i int, health string, backlog, failedDisks int, rebuilding bool, worstAFRPct float64) {
	if f == nil || i < 0 || i >= len(f.arrays) {
		return
	}
	code := uint64(0)
	switch health {
	case ArrayDraining:
		code = 1
	case ArrayEjected:
		code = 2
	}
	reb := uint64(0)
	if rebuilding {
		reb = 1
	}
	s := &f.arrays[i]
	f.seq.Add(1)
	s.health.Store(code)
	s.backlog.Store(uint64(backlog))
	s.failedDisks.Store(uint64(failedDisks))
	s.rebuilding.Store(reb)
	s.worstAFR.Store(math.Float64bits(worstAFRPct))
	f.seq.Add(1)
}

// Snapshot returns a consistent view. Safe from any goroutine; nil yields
// the zero snapshot.
func (f *FleetLive) Snapshot() FleetSnapshot {
	if f == nil {
		return FleetSnapshot{}
	}
	var s FleetSnapshot
	for {
		s1 := f.seq.Load()
		if s1%2 != 0 {
			continue
		}
		s.SimSeconds = math.Float64frombits(f.simTime.Load())
		s.Requests = f.requests.Load()
		s.Served = f.served.Load()
		s.Retries = f.retries.Load()
		s.Hedges = f.hedges.Load()
		s.HedgeWins = f.hedgeWins.Load()
		s.Failovers = f.failovers.Load()
		s.Timeouts = f.timeouts.Load()
		s.Deferred = f.deferred.Load()
		s.Shed = f.shed.Load()
		s.Failed = f.failed.Load()
		s.Shocks = f.shocks.Load()
		s.PerArray = make([]FleetArraySnapshot, len(f.arrays))
		for i := range f.arrays {
			a := &f.arrays[i]
			h := ArrayHealthy
			switch a.health.Load() {
			case 1:
				h = ArrayDraining
			case 2:
				h = ArrayEjected
			}
			s.PerArray[i] = FleetArraySnapshot{
				Health:      h,
				Backlog:     a.backlog.Load(),
				FailedDisks: a.failedDisks.Load(),
				Rebuilding:  a.rebuilding.Load() == 1,
				WorstAFRPct: math.Float64frombits(a.worstAFR.Load()),
			}
		}
		if f.seq.Load() == s1 {
			return s
		}
	}
}

package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// DiskSample is one per-disk point of the time series recorded on epoch
// boundaries. The JSON field names are the NDJSON schema; the CSV columns
// use the same names in the same order.
type DiskSample struct {
	// T is the virtual time of the sample in seconds.
	T float64 `json:"t"`
	// Epoch is the zero-based epoch index the sample closes; the run-final
	// sample uses the epoch count (one past the last boundary).
	Epoch int `json:"epoch"`
	// Disk is the disk's index within the array.
	Disk int `json:"disk"`
	// Utilization is the lifetime busy-time fraction so far, in [0,1].
	Utilization float64 `json:"util"`
	// TempC is the time-weighted mean operating temperature so far.
	TempC float64 `json:"temp_c"`
	// Speed is the spindle speed level ("low" or "high").
	Speed string `json:"speed"`
	// Transitions is the cumulative speed-transition count.
	Transitions int `json:"transitions"`
	// AFRPct is the live PRESS AFR estimate, in percent, from the disk's
	// factors so far.
	AFRPct float64 `json:"afr_pct"`
	// QueueDepth counts queued (not in service) operations on the disk.
	QueueDepth int `json:"queue"`
	// EnergyJ is the disk's cumulative energy so far, in joules.
	EnergyJ float64 `json:"energy_j"`
}

// seriesColumns is the CSV header, matching DiskSample's JSON names.
const seriesColumns = "t,epoch,disk,util,temp_c,speed,transitions,afr_pct,queue,energy_j"

// SeriesWriter exports DiskSamples as NDJSON (one JSON object per line) and
// CSV simultaneously. Either writer may be nil to skip that format.
type SeriesWriter struct {
	nd  *bufio.Writer
	csv *bufio.Writer
	enc *json.Encoder
}

// NewSeriesWriter starts a series on the given writers (either may be nil).
// The CSV header is written immediately.
func NewSeriesWriter(ndjson, csvw io.Writer) *SeriesWriter {
	w := &SeriesWriter{}
	if ndjson != nil {
		w.nd = bufio.NewWriterSize(ndjson, 32<<10)
		w.enc = json.NewEncoder(w.nd)
	}
	if csvw != nil {
		w.csv = bufio.NewWriterSize(csvw, 32<<10)
		fmt.Fprintln(w.csv, seriesColumns)
	}
	return w
}

// g formats a float with full round-trip precision.
func g(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Write appends one sample to both outputs.
func (w *SeriesWriter) Write(s DiskSample) error {
	if w == nil {
		return nil
	}
	if w.enc != nil {
		if err := w.enc.Encode(s); err != nil {
			return err
		}
	}
	if w.csv != nil {
		_, err := fmt.Fprintf(w.csv, "%s,%d,%d,%s,%s,%s,%d,%s,%d,%s\n",
			g(s.T), s.Epoch, s.Disk, g(s.Utilization), g(s.TempC), s.Speed,
			s.Transitions, g(s.AFRPct), s.QueueDepth, g(s.EnergyJ))
		if err != nil {
			return err
		}
	}
	return nil
}

// Flush flushes both buffered outputs.
func (w *SeriesWriter) Flush() error {
	if w == nil {
		return nil
	}
	if w.nd != nil {
		if err := w.nd.Flush(); err != nil {
			return err
		}
	}
	if w.csv != nil {
		if err := w.csv.Flush(); err != nil {
			return err
		}
	}
	return nil
}

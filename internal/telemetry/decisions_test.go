package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// sampleLog builds a small log exercising every record shape: an observed
// spin-down, an open (unobserved) spin-up, and a migrate with file routing.
func sampleLog() *DecisionLog {
	l := NewDecisionLog()
	seq := l.Append(Decision{
		T: 1.5, Epoch: 1, Kind: DecisionSpinDown, Cause: "idle-threshold",
		Disk: 2, PredictedSaveW: 8.2, PredictedJ: 270, PredictedWaitS: 10.9,
	})
	l.Resolve(seq, func(d *Decision) {
		d.Observed = true
		d.ObservedParkedS = 42.5
		d.ObservedJ = 42.5*8.2 - 270
	})
	l.Append(Decision{
		T: 44.0, Epoch: 3, Kind: DecisionSpinUp, Cause: "demand", Disk: 2,
		PredictedJ: 135, PredictedWaitS: 10.9,
	})
	l.Append(Decision{
		T: 50.0, Epoch: 3, Kind: DecisionMigrate, Cause: "popularity",
		FileID: 7, From: 2, To: 0, SizeMB: 1.25, PredictedJ: 0.4,
	})
	return l
}

func TestDecisionLogNDJSONRoundTrip(t *testing.T) {
	l := sampleLog()
	var buf bytes.Buffer
	if err := l.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	first := append([]byte(nil), buf.Bytes()...)

	got, err := ReadDecisionNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != l.Len() {
		t.Fatalf("round trip lost records: %d, want %d", got.Len(), l.Len())
	}
	var second bytes.Buffer
	if err := got.WriteNDJSON(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second.Bytes()) {
		t.Fatalf("round trip not bit-identical:\nfirst:\n%s\nsecond:\n%s", first, second.Bytes())
	}
	// Sequence numbers were assigned by Append, 1-based and dense.
	for i, rec := range got.Records() {
		if rec.Seq != uint64(i)+1 {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
	}
	if rec := got.Records()[0]; !rec.Observed || rec.ObservedParkedS != 42.5 {
		t.Fatalf("observed outcome lost in round trip: %+v", rec)
	}
}

func TestReadDecisionNDJSONRejectsBadSeq(t *testing.T) {
	in := `{"seq":1,"t":1,"kind":"spin-down"}
{"seq":3,"t":2,"kind":"spin-up"}
`
	if _, err := ReadDecisionNDJSON(strings.NewReader(in)); err == nil {
		t.Fatal("gap in sequence numbers accepted")
	} else if !strings.Contains(err.Error(), "seq 3, want 2") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// A nil *DecisionLog is a full no-op sink, like every other telemetry handle.
func TestNilDecisionLogIsNoOp(t *testing.T) {
	var l *DecisionLog
	if seq := l.Append(Decision{Kind: DecisionSpinDown}); seq != 0 {
		t.Fatalf("nil Append returned seq %d", seq)
	}
	l.Resolve(1, func(*Decision) { t.Fatal("resolver ran on nil log") })
	if l.Len() != 0 || l.Records() != nil {
		t.Fatal("nil log reports contents")
	}
	if st := l.State(); len(st.Records) != 0 {
		t.Fatal("nil log snapshot non-empty")
	}
	l.SetState(DecisionLogState{Records: []Decision{{Seq: 1}}}) // must not panic
}

func TestDecisionLogStateRoundTrip(t *testing.T) {
	l := sampleLog()
	st := l.State()

	// The snapshot is a copy: later appends must not leak into it.
	l.Append(Decision{T: 99, Kind: DecisionReassign})
	if len(st.Records) != 3 {
		t.Fatalf("snapshot grew with the log: %d records", len(st.Records))
	}

	restored := NewDecisionLog()
	restored.SetState(st)
	var want, got bytes.Buffer
	if err := sampleLog().WriteNDJSON(&want); err != nil {
		t.Fatal(err)
	}
	if err := restored.WriteNDJSON(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("restored log differs:\nwant:\n%s\ngot:\n%s", want.String(), got.String())
	}
	// Appending to the restored log continues the sequence.
	if seq := restored.Append(Decision{Kind: DecisionSpinUp}); seq != 4 {
		t.Fatalf("post-restore Append assigned seq %d, want 4", seq)
	}
}

func TestAttributionAddDelta(t *testing.T) {
	a := Attribution{Requests: 10, QueueWaitS: 1.5, SpinupWaitS: 0.5, SeekS: 2, TransferS: 1, ServiceEnergyJ: 100, DegradedRequests: 2, DegradedPenaltyS: 0.7, SpinupWaits: 3}
	b := Attribution{Requests: 4, QueueWaitS: 0.5, SeekS: 1, ServiceEnergyJ: 40, SpinupWaits: 1}
	sum := a
	sum.Add(b)
	if sum.Requests != 14 || sum.ServiceEnergyJ != 140 || sum.SpinupWaits != 4 {
		t.Fatalf("Add wrong: %+v", sum)
	}
	if d := sum.Delta(b); d != a {
		t.Fatalf("Delta did not invert Add: %+v != %+v", d, a)
	}
}

package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func progressLines(buf *bytes.Buffer) []string {
	var lines []string
	for _, l := range strings.Split(buf.String(), "\n") {
		if strings.TrimSpace(l) != "" {
			lines = append(lines, l)
		}
	}
	return lines
}

// A burst of Ticks inside one rate-limit window emits exactly one line: the
// first (the limiter starts open), with the rest suppressed.
func TestProgressTickRateLimitsBurst(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(NewLogger("test", &buf, LogInfo), time.Hour)
	for i := 0; i < 1000; i++ {
		p.Tick(float64(i), uint64(i))
	}
	lines := progressLines(&buf)
	if len(lines) != 1 {
		t.Fatalf("burst of 1000 Ticks emitted %d lines, want 1:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "progress sim=0.0s events=0") {
		t.Fatalf("first tick line wrong: %q", lines[0])
	}
}

// Stepf shares the same limiter as Tick.
func TestProgressStepfSharesLimiter(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(NewLogger("test", &buf, LogInfo), time.Hour)
	p.Tick(1, 1) // consumes the open slot
	for i := 0; i < 100; i++ {
		p.Stepf("cell %d", i)
	}
	if lines := progressLines(&buf); len(lines) != 1 {
		t.Fatalf("Stepf burst after Tick emitted %d lines, want 1", len(lines))
	}
}

// Phase and Done are unconditional: they always log, burst or not.
func TestProgressPhaseAndDoneAlwaysLog(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(NewLogger("test", &buf, LogInfo), time.Hour)
	p.Phase("a")
	p.Phase("b")
	p.Done("b", 100, 42)
	lines := progressLines(&buf)
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "phase a") || !strings.Contains(lines[2], "done b sim=100.0s events=42") {
		t.Fatalf("unexpected lines: %v", lines)
	}
}

// After the window elapses, the next Tick is allowed again.
func TestProgressAllowsAfterInterval(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(NewLogger("test", &buf, LogInfo), 10*time.Millisecond)
	p.Tick(1, 1)
	p.Tick(2, 2) // suppressed
	time.Sleep(25 * time.Millisecond)
	p.Tick(3, 3) // allowed
	if lines := progressLines(&buf); len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
}

// Zero (and negative) intervals fall back to the 2 s default rather than
// disabling the limiter.
func TestProgressZeroIntervalDefaults(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(NewLogger("test", &buf, LogInfo), 0)
	for i := 0; i < 50; i++ {
		p.Tick(float64(i), 0)
	}
	if lines := progressLines(&buf); len(lines) != 1 {
		t.Fatalf("default interval did not rate-limit: %d lines", len(lines))
	}
}

// A nil *Progress is a no-op sink for every method.
func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	p.Phase("x")
	p.Tick(1, 1)
	p.Stepf("y %d", 1)
	p.Done("x", 1, 1)
}

// Progress is goroutine-safe: a concurrent burst under -race must not trip
// the detector, and the hour-long window still admits exactly one line.
func TestProgressConcurrentBurst(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(NewLogger("test", &buf, LogInfo), time.Hour)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p.Tick(float64(i), uint64(i))
				p.Stepf("s %d", i)
			}
		}()
	}
	wg.Wait()
	if lines := progressLines(&buf); len(lines) != 1 {
		t.Fatalf("concurrent burst emitted %d lines, want 1", len(lines))
	}
}

// fakeClock is a settable wall clock for skew tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// A backward wall-clock step (NTP correction, VM migration) must reset the
// limiter window, not silence progress until real time crawls past the stale
// high-water mark.
func TestProgressBackwardClockSkewResetsLimiter(t *testing.T) {
	var buf bytes.Buffer
	clk := &fakeClock{t: time.Unix(1000000, 0)}
	p := NewProgress(NewLogger("test", &buf, LogInfo), time.Second)
	p.setClock(clk.now)

	p.Tick(1, 1) // limiter starts open
	clk.advance(-time.Hour)
	p.Tick(2, 2) // backward jump: window resets, line allowed
	if lines := progressLines(&buf); len(lines) != 2 {
		t.Fatalf("backward skew suppressed output: %d lines, want 2:\n%s", len(lines), buf.String())
	}
	// The reset re-arms the limiter at the *new* (earlier) time: the next
	// tick inside the window is suppressed, and one past it is allowed.
	p.Tick(3, 3)
	clk.advance(1500 * time.Millisecond)
	p.Tick(4, 4)
	if lines := progressLines(&buf); len(lines) != 3 {
		t.Fatalf("limiter did not re-arm after skew reset: %d lines, want 3:\n%s", len(lines), buf.String())
	}
}

// A forward jump simply opens the window, exactly as real elapsed time
// would; the limiter keeps pacing from the jumped-to instant.
func TestProgressForwardClockSkewOpensWindow(t *testing.T) {
	var buf bytes.Buffer
	clk := &fakeClock{t: time.Unix(1000000, 0)}
	p := NewProgress(NewLogger("test", &buf, LogInfo), time.Minute)
	p.setClock(clk.now)

	p.Tick(1, 1)
	p.Tick(2, 2) // suppressed: same instant
	clk.advance(48 * time.Hour)
	p.Tick(3, 3) // allowed: window long past
	p.Tick(4, 4) // suppressed again at the new instant
	if lines := progressLines(&buf); len(lines) != 2 {
		t.Fatalf("forward skew handling wrong: %d lines, want 2:\n%s", len(lines), buf.String())
	}
}

// A frozen clock (zero elapsed between calls) suppresses everything after
// the first line — time standing still must not flood the log.
func TestProgressFrozenClockStaysLimited(t *testing.T) {
	var buf bytes.Buffer
	clk := &fakeClock{t: time.Unix(1000000, 0)}
	p := NewProgress(NewLogger("test", &buf, LogInfo), time.Second)
	p.setClock(clk.now)
	for i := 0; i < 100; i++ {
		p.Tick(float64(i), uint64(i))
	}
	if lines := progressLines(&buf); len(lines) != 1 {
		t.Fatalf("frozen clock emitted %d lines, want 1", len(lines))
	}
}

package telemetry

import (
	"testing"

	"repro/internal/des"
)

func TestSweepTrackerLifecycle(t *testing.T) {
	tr := NewSweepTracker([]string{"a", "b", "c"}, 2)
	s := tr.Snapshot()
	if s.Total != 3 || s.Pending != 3 || s.ETASeconds != -1 {
		t.Fatalf("fresh tracker snapshot %+v", s)
	}

	live, watch := tr.StartCell("a")
	if live == nil || watch == nil {
		t.Fatal("StartCell returned nil handles")
	}
	live.Tick(5, 500, 100, 101)
	s = tr.Snapshot()
	if s.Running != 1 || s.Pending != 2 {
		t.Fatalf("after start: %+v", s)
	}
	if row := s.Cells[0]; row.Cell != "a" || row.State != CellStateRunning || row.SimSeconds != 5 {
		t.Fatalf("running row %+v", row)
	}

	tr.CellDone("a", 2.0, 12345)
	s = tr.Snapshot()
	if s.Done != 1 || s.ETASeconds < 0 {
		t.Fatalf("after done: %+v (ETA must exist once a cell completed)", s)
	}
	if s.Cells[0].Events != 12345 || s.Cells[0].WallSeconds != 2.0 {
		t.Fatalf("done row %+v", s.Cells[0])
	}

	// b fails once (retried), then terminally.
	tr.StartCell("b")
	stall := &des.StallError{Streak: 9, LastLabel: "spin"}
	tr.CellRetrying("b", stall)
	s = tr.Snapshot()
	if s.Retried != 1 || s.Cells[1].State != CellStateRetried {
		t.Fatalf("after retry: %+v", s)
	}
	if s.Cells[1].Stall == nil || s.Cells[1].Stall.LastLabel != "spin" {
		t.Fatalf("stall record not extracted: %+v", s.Cells[1])
	}
	tr.StartCell("b")
	tr.CellFailed("b", stall, 1.5)
	s = tr.Snapshot()
	if s.Failed != 1 || s.Cells[1].Attempts != 2 {
		t.Fatalf("after terminal failure: %+v", s)
	}

	tr.StartCell("c")
	tr.CellDone("c", 4.0, 100)
	s = tr.Snapshot()
	if s.Done != 2 || s.Running != 0 || s.Pending != 0 {
		t.Fatalf("final state: %+v", s)
	}
	// All cells resolved: remaining work is zero.
	if s.ETASeconds != 0 {
		t.Fatalf("ETA %v at sweep end, want 0", s.ETASeconds)
	}
}

func TestSweepTrackerETAUsesMeanWallClock(t *testing.T) {
	tr := NewSweepTracker([]string{"a", "b", "c", "d", "e"}, 1)
	tr.StartCell("a")
	tr.CellDone("a", 10, 1)
	tr.StartCell("b")
	tr.CellDone("b", 20, 1)
	s := tr.Snapshot()
	// Mean completed wall-clock is 15 s; three pending cells on one lane.
	if s.ETASeconds != 45 {
		t.Fatalf("ETA %v, want 45 (3 pending × 15 s mean / 1 lane)", s.ETASeconds)
	}
}

func TestSweepTrackerNilSafe(t *testing.T) {
	var tr *SweepTracker
	live, watch := tr.StartCell("x")
	if live != nil || watch != nil {
		t.Fatal("nil tracker must return nil handles")
	}
	tr.CellDone("x", 1, 1)
	tr.CellRetrying("x", nil)
	tr.CellFailed("x", nil, 1)
	if s := tr.Snapshot(); s.Total != 0 || s.ETASeconds != -1 {
		t.Fatalf("nil tracker snapshot %+v", s)
	}
}

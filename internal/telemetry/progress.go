package telemetry

//simlint:allowfile detrand -- progress logging measures real-world pace by design; it is observationally pure and never feeds simulation state

import (
	"log"
	"sync"
	"time"
)

// Progress is a structured, rate-limited progress logger for long runs:
// phase transitions, periodic sim-time/wall-time status, and completion
// lines. It is goroutine-safe (sweep cells log from worker goroutines) and
// a nil *Progress is a valid no-op sink.
type Progress struct {
	mu    sync.Mutex
	log   *log.Logger
	start time.Time
	every time.Duration
	last  time.Time
}

// NewProgress returns a progress logger writing through l, emitting
// rate-limited lines at most once per `every` (zero means 2 s).
func NewProgress(l *log.Logger, every time.Duration) *Progress {
	if every <= 0 {
		every = 2 * time.Second
	}
	return &Progress{log: l, start: time.Now(), every: every}
}

func (p *Progress) elapsed() time.Duration {
	return time.Since(p.start).Round(time.Millisecond)
}

// Phase logs a run-phase transition unconditionally.
func (p *Progress) Phase(name string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.log.Printf("phase %s (t+%s)", name, p.elapsed())
}

// allow reports whether a rate-limited line may be emitted now. Callers must
// hold p.mu.
func (p *Progress) allow() bool {
	now := time.Now()
	if now.Sub(p.last) < p.every {
		return false
	}
	p.last = now
	return true
}

// Tick logs simulation progress — virtual time reached, events fired, and
// the sim-time/wall-time ratio — at most once per rate-limit interval.
func (p *Progress) Tick(simSeconds float64, fired uint64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.allow() {
		return
	}
	wall := time.Since(p.start).Seconds()
	ratio := 0.0
	if wall > 0 {
		ratio = simSeconds / wall
	}
	p.log.Printf("progress sim=%.1fs events=%d speedup=%.0fx (t+%s)",
		simSeconds, fired, ratio, p.elapsed())
}

// Stepf logs an arbitrary rate-limited progress line (e.g. sweep-cell
// completions).
func (p *Progress) Stepf(format string, args ...any) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.allow() {
		return
	}
	p.log.Printf(format, args...)
}

// Done logs a completion line unconditionally: the phase that finished, the
// virtual time covered, events fired, and the final sim/wall ratio.
func (p *Progress) Done(name string, simSeconds float64, fired uint64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	wall := time.Since(p.start).Seconds()
	ratio := 0.0
	if wall > 0 {
		ratio = simSeconds / wall
	}
	p.log.Printf("done %s sim=%.1fs events=%d speedup=%.0fx (t+%s)",
		name, simSeconds, fired, ratio, p.elapsed())
}

package telemetry

//simlint:allowfile detrand -- progress logging measures real-world pace by design; it is observationally pure and never feeds simulation state

import (
	"sync"
	"time"
)

// Progress is a structured, rate-limited progress logger for long runs:
// phase transitions, periodic sim-time/wall-time status, and completion
// lines. It is goroutine-safe (sweep cells log from worker goroutines) and
// a nil *Progress is a valid no-op sink. Lines go through the shared leveled
// Logger at info level, so progress output and other log lines never
// interleave mid-line.
type Progress struct {
	mu    sync.Mutex
	log   *Logger
	now   func() time.Time // injectable for clock-skew tests
	start time.Time
	every time.Duration
	last  time.Time
}

// NewProgress returns a progress logger writing through l, emitting
// rate-limited lines at most once per `every` (zero means 2 s).
func NewProgress(l *Logger, every time.Duration) *Progress {
	if every <= 0 {
		every = 2 * time.Second
	}
	return &Progress{log: l, now: time.Now, start: time.Now(), every: every}
}

// setClock replaces the wall-clock source, for tests that simulate skew.
// Callers must not have other goroutines using p concurrently.
func (p *Progress) setClock(now func() time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.now = now
	p.start = now()
}

func (p *Progress) elapsed() time.Duration {
	return p.now().Sub(p.start).Round(time.Millisecond)
}

// Phase logs a run-phase transition unconditionally.
func (p *Progress) Phase(name string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.log.Infof("phase %s (t+%s)", name, p.elapsed())
}

// allow reports whether a rate-limited line may be emitted now. Callers must
// hold p.mu.
//
// The limiter is hardened against wall-clock skew: if the clock stepped
// backwards since the last emission (NTP correction, VM migration), the
// window is reset and the line allowed — otherwise a single backward jump
// would silence progress output until real time crawled past the stale
// high-water mark.
func (p *Progress) allow() bool {
	now := p.now()
	since := now.Sub(p.last)
	if since >= 0 && since < p.every {
		return false
	}
	p.last = now
	return true
}

// Tick logs simulation progress — virtual time reached, events fired, and
// the sim-time/wall-time ratio — at most once per rate-limit interval.
func (p *Progress) Tick(simSeconds float64, fired uint64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.allow() {
		return
	}
	wall := p.now().Sub(p.start).Seconds()
	ratio := 0.0
	if wall > 0 {
		ratio = simSeconds / wall
	}
	p.log.Infof("progress sim=%.1fs events=%d speedup=%.0fx (t+%s)",
		simSeconds, fired, ratio, p.elapsed())
}

// Stepf logs an arbitrary rate-limited progress line (e.g. sweep-cell
// completions).
func (p *Progress) Stepf(format string, args ...any) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.allow() {
		return
	}
	p.log.Infof(format, args...)
}

// Done logs a completion line unconditionally: the phase that finished, the
// virtual time covered, events fired, and the final sim/wall ratio.
func (p *Progress) Done(name string, simSeconds float64, fired uint64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	wall := p.now().Sub(p.start).Seconds()
	ratio := 0.0
	if wall > 0 {
		ratio = simSeconds / wall
	}
	p.log.Infof("done %s sim=%.1fs events=%d speedup=%.0fx (t+%s)",
		name, simSeconds, fired, ratio, p.elapsed())
}

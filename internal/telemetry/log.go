package telemetry

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// LogLevel orders logger verbosity: errors only (-quiet), the default info
// stream, or debug detail (-v).
type LogLevel int

const (
	// LogError emits errors only (the -quiet flag).
	LogError LogLevel = iota
	// LogInfo is the default level: progress, results, warnings.
	LogInfo
	// LogDebug adds per-step diagnostic detail (the -v flag).
	LogDebug
)

// LevelFromFlags maps the shared -quiet/-v command-line flags onto a level;
// -quiet wins when both are set (a script asking for silence should get it).
func LevelFromFlags(quiet, verbose bool) LogLevel {
	switch {
	case quiet:
		return LogError
	case verbose:
		return LogDebug
	default:
		return LogInfo
	}
}

// Logger is the leveled logger shared by all commands and by Progress. One
// mutex serializes every line, so rate-limited progress output and ops-plane
// lines never interleave mid-line. Lines render as "name: message", matching
// the historical log.SetPrefix style; debug lines as "name: debug: message".
//
// A nil *Logger is a valid no-op sink for Infof/Debugf; Errorf and Fatalf
// fall back to stderr so failures are never silently dropped.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	name  string
	level LogLevel
	exit  func(int) // os.Exit, injectable for tests
}

// NewLogger returns a logger writing "name: ..." lines to w at the given
// level. A nil writer means stderr.
func NewLogger(name string, w io.Writer, level LogLevel) *Logger {
	if w == nil {
		w = os.Stderr
	}
	return &Logger{w: w, name: name, level: level, exit: os.Exit}
}

// Level reports the logger's verbosity (LogInfo for a nil logger).
func (l *Logger) Level() LogLevel {
	if l == nil {
		return LogInfo
	}
	return l.level
}

func (l *Logger) emit(prefix, format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.w, "%s: %s%s\n", l.name, prefix, fmt.Sprintf(format, args...))
}

// Infof logs at the default level.
func (l *Logger) Infof(format string, args ...any) {
	if l == nil || l.level < LogInfo {
		return
	}
	l.emit("", format, args...)
}

// Debugf logs diagnostic detail shown only with -v.
func (l *Logger) Debugf(format string, args ...any) {
	if l == nil || l.level < LogDebug {
		return
	}
	l.emit("debug: ", format, args...)
}

// Errorf logs an error line; it is emitted at every level, including -quiet.
func (l *Logger) Errorf(format string, args ...any) {
	if l == nil {
		fmt.Fprintf(os.Stderr, "error: "+format+"\n", args...)
		return
	}
	l.emit("error: ", format, args...)
}

// Fatalf logs an error line and exits with status 1.
func (l *Logger) Fatalf(format string, args ...any) {
	l.Errorf(format, args...)
	if l != nil && l.exit != nil {
		l.exit(1)
		return
	}
	os.Exit(1)
}

// Fatal is Fatalf for a bare value, mirroring log.Fatal call sites.
func (l *Logger) Fatal(v any) {
	l.Fatalf("%v", v)
}

package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Decision tracing. Every policy action the simulator executes — spinning a
// disk down or up, migrating a file, re-homing a file after a failure,
// pacing a rebuild — can emit one typed Decision record carrying the
// virtual time, the cause the policy declared, the cost the simulator
// predicted when the action was taken, and (once known) the cost actually
// observed. The log is the substrate for counterfactual replay: records are
// numbered by a monotone sequence, and a replay run can force a single
// numbered decision to be skipped and measure the energy/AFR/latency delta
// of that one choice.
//
// Like every other telemetry handle, a nil *DecisionLog is a valid no-op
// sink: Append on nil returns 0 and records nothing, so instrumented code
// needs no branches beyond the nil check it already performs.

// Decision kinds emitted by the simulator. The first block comes from the
// single-array policy layer; the second from the cluster routing tier.
const (
	DecisionSpinDown    = "spin-down"
	DecisionSpinUp      = "spin-up"
	DecisionMigrate     = "migrate"
	DecisionReassign    = "reassign-file"
	DecisionRebuildPace = "rebuild-pace"

	DecisionRetry    = "retry"
	DecisionHedge    = "hedge"
	DecisionFailover = "failover"
)

// Decision is one policy action. Predicted* fields are filled when the
// action is taken; Observed* fields when its outcome resolves (a parked
// disk spins back up, a migration's write leg lands, a rebuild drains).
type Decision struct {
	// Seq is the 1-based position of this record in the log; it is the
	// stable handle -override addresses.
	Seq uint64 `json:"seq"`
	// T is the virtual time the decision was taken, in seconds.
	T float64 `json:"t"`
	// Epoch is the policy epoch the decision fell in.
	Epoch int `json:"epoch"`
	// Kind is one of the Decision* constants.
	Kind string `json:"kind"`
	// Cause is the policy's declared reason ("idle-threshold", "heat",
	// "afr-signal", ...); empty when the policy declared none.
	Cause string `json:"cause,omitempty"`

	Disk   int     `json:"disk,omitempty"`
	FileID int     `json:"file_id,omitempty"`
	From   int     `json:"from,omitempty"`
	To     int     `json:"to,omitempty"`
	SizeMB float64 `json:"size_mb,omitempty"`

	// PredictedJ is the energy the action was expected to cost (transition
	// round trips) or move (migrations), in joules.
	PredictedJ float64 `json:"predicted_j,omitempty"`
	// PredictedWaitS is the latency exposure the action was expected to
	// create (spin-up time a parked disk imposes on its next request, or
	// a rebuild's expected duration), in seconds.
	PredictedWaitS float64 `json:"predicted_wait_s,omitempty"`
	// PredictedSaveW is the power the action was expected to save while it
	// held (idle power delta of a spin-down), in watts.
	PredictedSaveW float64 `json:"predicted_save_w,omitempty"`

	// Observed reports whether the outcome fields below are filled.
	Observed bool `json:"observed,omitempty"`
	// ObservedJ is the realized net energy effect, in joules (for a
	// spin-down: energy saved while parked minus the transition round
	// trip — negative means the park lost energy).
	ObservedJ float64 `json:"observed_j,omitempty"`
	// ObservedParkedS is how long the disk actually stayed parked.
	ObservedParkedS float64 `json:"observed_parked_s,omitempty"`
	// ObservedWaitS is the realized latency cost (actual spin-up or
	// rebuild duration), in seconds.
	ObservedWaitS float64 `json:"observed_wait_s,omitempty"`
	// WakeRequests counts requests that were queued behind the action when
	// it resolved (requests that paid the spin-up wait).
	WakeRequests int `json:"wake_requests,omitempty"`

	// Overridden names the replay override applied to this decision
	// ("skip"); empty on normal runs.
	Overridden string `json:"overridden,omitempty"`
}

// DecisionLog accumulates Decision records in emission order. The zero
// value is ready to use; a nil log is a no-op sink.
type DecisionLog struct {
	recs []Decision
}

// NewDecisionLog returns an empty log.
func NewDecisionLog() *DecisionLog { return &DecisionLog{} }

// Append assigns the next sequence number to d, stores it, and returns the
// sequence number (0 on a nil log).
func (l *DecisionLog) Append(d Decision) uint64 {
	if l == nil {
		return 0
	}
	d.Seq = uint64(len(l.recs)) + 1
	l.recs = append(l.recs, d)
	return d.Seq
}

// Resolve applies fn to the record with sequence number seq. Unknown
// sequence numbers (and nil logs) are ignored.
func (l *DecisionLog) Resolve(seq uint64, fn func(*Decision)) {
	if l == nil || seq == 0 || seq > uint64(len(l.recs)) {
		return
	}
	fn(&l.recs[seq-1])
}

// Len returns the number of records (0 on nil).
func (l *DecisionLog) Len() int {
	if l == nil {
		return 0
	}
	return len(l.recs)
}

// Records returns the backing slice in emission order; callers must not
// mutate it.
func (l *DecisionLog) Records() []Decision {
	if l == nil {
		return nil
	}
	return l.recs
}

// WriteNDJSON writes one JSON object per record, in sequence order.
func (l *DecisionLog) WriteNDJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := range l.Records() {
		b, err := json.Marshal(&l.recs[i])
		if err != nil {
			return fmt.Errorf("telemetry: decision %d: %w", i+1, err)
		}
		bw.Write(b)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadDecisionNDJSON parses a decision log written by WriteNDJSON.
func ReadDecisionNDJSON(r io.Reader) (*DecisionLog, error) {
	l := NewDecisionLog()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var d Decision
		if err := json.Unmarshal(b, &d); err != nil {
			return nil, fmt.Errorf("telemetry: decision log line %d: %w", line, err)
		}
		if want := uint64(len(l.recs)) + 1; d.Seq != want {
			return nil, fmt.Errorf("telemetry: decision log line %d: seq %d, want %d", line, d.Seq, want)
		}
		l.recs = append(l.recs, d)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: decision log: %w", err)
	}
	return l, nil
}

// DecisionLogState is the checkpoint record for a DecisionLog.
//
//simlint:checkpoint-for DecisionLog alias=recs:Records
type DecisionLogState struct {
	Records []Decision `json:"records"`
}

// State snapshots the log for a checkpoint.
func (l *DecisionLog) State() DecisionLogState {
	if l == nil {
		return DecisionLogState{}
	}
	return DecisionLogState{Records: append([]Decision(nil), l.recs...)}
}

// SetState restores a snapshot taken by State.
func (l *DecisionLog) SetState(st DecisionLogState) {
	if l == nil {
		return
	}
	l.recs = append(l.recs[:0], st.Records...)
}

// Attribution is a per-request cost decomposition summed over a set of
// requests: where response time went (queue wait behind other work,
// spin-up wait behind a parked disk, seek, transfer, degraded re-route
// penalty) and the service energy those requests consumed.
type Attribution struct {
	// Requests is the number of completed user requests attributed.
	Requests int `json:"requests"`
	// QueueWaitS is time spent queued behind other operations.
	QueueWaitS float64 `json:"queue_wait_s"`
	// SpinupWaitS is time spent waiting for a disk speed transition —
	// the latency bill of the spin-downs that parked those disks.
	SpinupWaitS float64 `json:"spinup_wait_s"`
	// SeekS is positioning time inside service.
	SeekS float64 `json:"seek_s"`
	// TransferS is media transfer time inside service.
	TransferS float64 `json:"transfer_s"`
	// ServiceEnergyJ is active-power energy consumed serving the requests.
	ServiceEnergyJ float64 `json:"service_energy_j"`
	// DegradedPenaltyS is the total response time of requests re-routed
	// around a failed disk (the reliability bill, in latency form).
	DegradedPenaltyS float64 `json:"degraded_penalty_s"`
	// DegradedRequests counts re-routed requests.
	DegradedRequests int `json:"degraded_requests"`
	// SpinupWaits counts requests that paid a nonzero spin-up wait.
	SpinupWaits int `json:"spinup_waits"`
}

// add accumulates o into a.
func (a *Attribution) add(o Attribution) {
	a.Requests += o.Requests
	a.QueueWaitS += o.QueueWaitS
	a.SpinupWaitS += o.SpinupWaitS
	a.SeekS += o.SeekS
	a.TransferS += o.TransferS
	a.ServiceEnergyJ += o.ServiceEnergyJ
	a.DegradedPenaltyS += o.DegradedPenaltyS
	a.DegradedRequests += o.DegradedRequests
	a.SpinupWaits += o.SpinupWaits
}

// sub returns a minus o, field by field.
func (a Attribution) sub(o Attribution) Attribution {
	return Attribution{
		Requests:         a.Requests - o.Requests,
		QueueWaitS:       a.QueueWaitS - o.QueueWaitS,
		SpinupWaitS:      a.SpinupWaitS - o.SpinupWaitS,
		SeekS:            a.SeekS - o.SeekS,
		TransferS:        a.TransferS - o.TransferS,
		ServiceEnergyJ:   a.ServiceEnergyJ - o.ServiceEnergyJ,
		DegradedPenaltyS: a.DegradedPenaltyS - o.DegradedPenaltyS,
		DegradedRequests: a.DegradedRequests - o.DegradedRequests,
		SpinupWaits:      a.SpinupWaits - o.SpinupWaits,
	}
}

// Add and Delta are the exported accumulation helpers (used by the sweep
// aggregator; the simulator uses the unexported forms directly).
func (a *Attribution) Add(o Attribution) { a.add(o) }

// Delta returns a minus o.
func (a Attribution) Delta(o Attribution) Attribution { return a.sub(o) }

// EpochAttribution is one epoch's slice of the attribution totals.
type EpochAttribution struct {
	Epoch int `json:"epoch"`
	Attribution
}

// AttributionReport is the run-level rollup attached to results and
// manifests when decision tracing is on.
type AttributionReport struct {
	// Totals decomposes every completed user request in the run.
	Totals Attribution `json:"totals"`
	// Epochs holds per-epoch slices of Totals, in epoch order.
	Epochs []EpochAttribution `json:"epochs,omitempty"`

	// Decisions is the total decision count; the per-kind counters below
	// partition it.
	Decisions    int `json:"decisions"`
	SpinDowns    int `json:"spin_downs,omitempty"`
	SpinUps      int `json:"spin_ups,omitempty"`
	Migrations   int `json:"migrations,omitempty"`
	Reassigns    int `json:"reassigns,omitempty"`
	RebuildPaces int `json:"rebuild_paces,omitempty"`

	// WakeRequests counts requests that arrived at a parked or parking
	// disk and had to wait for it to spin up.
	WakeRequests int `json:"wake_requests,omitempty"`
	// ParkedSeconds is total low-speed residency bought by spin-down
	// decisions that have resolved (the disk spun back up).
	ParkedSeconds float64 `json:"parked_seconds,omitempty"`
	// ParkNetSavedJ is the realized net energy effect of resolved
	// spin-downs: idle-power savings while parked minus transition round
	// trips. Negative means the policy's parks cost energy on net.
	ParkNetSavedJ float64 `json:"park_net_saved_j,omitempty"`
}

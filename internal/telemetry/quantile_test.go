package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func uniformBounds() []float64 {
	b := make([]float64, 10)
	for i := range b {
		b[i] = float64((i + 1) * 100)
	}
	return b // 100, 200, ..., 1000
}

// With values 1..1000 in 100-wide buckets, interpolation recovers the
// uniform quantiles exactly at bucket-aligned targets.
func TestQuantileUniform(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("u", uniformBounds())
	for v := 1; v <= 1000; v++ {
		h.Observe(float64(v))
	}
	cases := []struct{ q, want float64 }{
		{0.50, 500},
		{0.95, 950},
		{0.99, 990},
		{0.10, 100},
		{0, 1},    // q<=0 → min
		{1, 1000}, // q>=1 → max
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

// Against a large exponential sample the bucketed estimate must stay within
// one bucket width of the analytic quantile.
func TestQuantileExponential(t *testing.T) {
	r := NewRegistry()
	bounds := make([]float64, 120)
	for i := range bounds {
		bounds[i] = 0.05 * float64(i+1) // 0.05 .. 6.0, width 0.05; covers p99≈4.6
	}
	h := r.Histogram("exp", bounds)
	rng := rand.New(rand.NewSource(42))
	const n = 200000
	for i := 0; i < n; i++ {
		h.Observe(rng.ExpFloat64()) // mean 1
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		want := -math.Log(1 - q) // analytic quantile of Exp(1)
		got := h.Quantile(q)
		if math.Abs(got-want) > 0.05+0.02*want {
			t.Errorf("Quantile(%v) = %v, want ≈%v", q, got, want)
		}
	}
}

func TestQuantileSkewedTwoPoint(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("two", []float64{10, 1000})
	for i := 0; i < 90; i++ {
		h.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h.Observe(500)
	}
	// p50 lives in the first bucket [min=1, 10]; p95 in (10, 1000] clamped
	// to max=500.
	if p50 := h.Quantile(0.5); p50 < 1 || p50 > 10 {
		t.Errorf("p50 = %v, want within first bucket [1,10]", p50)
	}
	if p95 := h.Quantile(0.95); p95 < 10 || p95 > 500 {
		t.Errorf("p95 = %v, want within (10, max=500]", p95)
	}
	if p999 := h.Quantile(0.999); p999 > 500 {
		t.Errorf("p999 = %v exceeds observed max 500", p999)
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("over", []float64{1})
	for i := 0; i < 100; i++ {
		h.Observe(50) // all mass beyond the last bound
	}
	for _, q := range []float64{0.5, 0.99} {
		if got := h.Quantile(q); got < 1 || got > 50 {
			t.Errorf("Quantile(%v) = %v outside (1, 50]", q, got)
		}
	}
}

func TestQuantileEmptyAndNil(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Fatalf("nil histogram quantile = %v", got)
	}
	r := NewRegistry()
	h := r.Histogram("empty", []float64{1, 2})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v", got)
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("one", LatencyBounds())
	h.Observe(0.123)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0.123 {
			t.Errorf("Quantile(%v) = %v, want 0.123", q, got)
		}
	}
}

func TestWriteJSONIncludesQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", uniformBounds())
	for v := 1; v <= 1000; v++ {
		h.Observe(float64(v))
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Histograms map[string]struct {
			P50 float64 `json:"p50"`
			P95 float64 `json:"p95"`
			P99 float64 `json:"p99"`
		}
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	hd := doc.Histograms["lat"]
	if hd.P50 != 500 || hd.P95 != 950 || hd.P99 != 990 {
		t.Fatalf("dumped quantiles %+v", hd)
	}
}

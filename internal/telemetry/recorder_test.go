package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestSeriesWriterFormats(t *testing.T) {
	var nd, csv bytes.Buffer
	w := NewSeriesWriter(&nd, &csv)
	samples := []DiskSample{
		{T: 1.5, Epoch: 0, Disk: 0, Utilization: 0.25, TempC: 40, Speed: "low", Transitions: 1, AFRPct: 8.5, QueueDepth: 2, EnergyJ: 100.125},
		{T: 3, Epoch: 1, Disk: 1, Utilization: 0.5, TempC: 50, Speed: "high", Transitions: 0, AFRPct: 13, QueueDepth: 0, EnergyJ: 200},
	}
	for _, s := range samples {
		if err := w.Write(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	// NDJSON: one valid JSON object per line, round-tripping the sample.
	lines := strings.Split(strings.TrimSpace(nd.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("ndjson has %d lines, want 2", len(lines))
	}
	for i, line := range lines {
		var got DiskSample
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i, err)
		}
		if got != samples[i] {
			t.Fatalf("line %d round-trip = %+v, want %+v", i, got, samples[i])
		}
	}

	// CSV: header plus one row per sample, full float precision.
	rows := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if rows[0] != seriesColumns {
		t.Fatalf("csv header = %q", rows[0])
	}
	if len(rows) != 3 {
		t.Fatalf("csv has %d rows, want 3", len(rows))
	}
	if rows[1] != "1.5,0,0,0.25,40,low,1,8.5,2,100.125" {
		t.Fatalf("csv row = %q", rows[1])
	}
}

func TestSeriesWriterNilSinks(t *testing.T) {
	var w *SeriesWriter
	if err := w.Write(DiskSample{}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Single-format writers skip the missing side.
	var nd bytes.Buffer
	only := NewSeriesWriter(&nd, nil)
	if err := only.Write(DiskSample{T: 1}); err != nil {
		t.Fatal(err)
	}
	if err := only.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(nd.String(), `"t":1`) {
		t.Fatalf("ndjson-only output = %q", nd.String())
	}
}

// parseTrace decodes a finished Chrome trace and returns its records.
func parseTrace(t *testing.T, raw []byte) []map[string]any {
	t.Helper()
	var records []map[string]any
	if err := json.Unmarshal(raw, &records); err != nil {
		t.Fatalf("trace is not a valid JSON array: %v\n%s", err, raw)
	}
	return records
}

func TestChromeTracerEmitsValidTrace(t *testing.T) {
	var buf bytes.Buffer
	tr := NewChromeTracer(&buf, 1, 0)
	tr.EventScheduled(1, "arrival", 2.5, 0)
	tr.EventFired(1, "arrival", 2.5, 1800)
	tr.EventCanceled(7, "idle-timer", 3)
	tr.EventFired(2, "", 4, 100) // empty label falls back to "event"
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	records := parseTrace(t, buf.Bytes())
	byPhase := map[string]int{}
	for _, r := range records {
		byPhase[r["ph"].(string)]++
	}
	if byPhase["X"] != 2 || byPhase["i"] != 2 {
		t.Fatalf("phases = %v, want 2 X and 2 i", byPhase)
	}

	var fired map[string]any
	for _, r := range records {
		if r["ph"] == "X" && r["name"] == "arrival" {
			fired = r
		}
	}
	if fired == nil {
		t.Fatal("no fired arrival slice")
	}
	if fired["ts"].(float64) != 2.5e6 {
		t.Fatalf("ts = %v, want virtual time in µs (2.5e6)", fired["ts"])
	}
	if fired["dur"].(float64) != 1.8 {
		t.Fatalf("dur = %v, want wall µs (1.8)", fired["dur"])
	}

	last := records[len(records)-1]
	if last["name"] != "trace_coverage" {
		t.Fatalf("final record = %v, want trace_coverage metadata", last)
	}
	args := last["args"].(map[string]any)
	if args["fired_seen"].(float64) != 2 || args["records_written"].(float64) != 4 {
		t.Fatalf("coverage = %v", args)
	}
}

func TestChromeTracerSamplingAndCap(t *testing.T) {
	var buf bytes.Buffer
	tr := NewChromeTracer(&buf, 3, 4)
	for i := 0; i < 30; i++ {
		tr.EventFired(uint64(i), "tick", float64(i), 500)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	records := parseTrace(t, buf.Bytes())
	var slices int
	for _, r := range records {
		if r["ph"] == "X" {
			slices++
		}
	}
	// 30 events sampled 1-in-3 is 10 admitted, capped at 4 written.
	if slices != 4 {
		t.Fatalf("wrote %d slices, want 4 (sampling 1/3 then cap 4)", slices)
	}
	args := records[len(records)-1]["args"].(map[string]any)
	if args["fired_seen"].(float64) != 30 || args["dropped_at_cap"].(float64) != 6 ||
		args["sample_every"].(float64) != 3 {
		t.Fatalf("coverage = %v", args)
	}
	if tr.Written() != 4 {
		t.Fatalf("Written = %d, want 4", tr.Written())
	}
}

func TestChromeTracerNilAndClosed(t *testing.T) {
	var tr *ChromeTracer
	tr.EventFired(1, "x", 0, 0)
	tr.EventScheduled(1, "x", 0, 0)
	tr.EventCanceled(1, "x", 0)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	live := NewChromeTracer(&buf, 1, 0)
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}
	n := len(buf.Bytes())
	live.EventFired(1, "x", 0, 0) // after Close: ignored
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}
	if len(buf.Bytes()) != n {
		t.Fatal("tracer wrote after Close")
	}
	parseTrace(t, buf.Bytes())
}

func TestProgressLogging(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(NewLogger("test", &buf, LogInfo), time.Hour)
	p.Phase("simulate")
	p.Tick(10, 100) // first tick: admitted immediately
	p.Tick(20, 200) // inside the rate window: suppressed
	p.Stepf("cell %d", 1)
	p.Done("simulate", 30, 300)
	out := buf.String()
	if !strings.Contains(out, "phase simulate") {
		t.Fatalf("missing phase line: %q", out)
	}
	if !strings.Contains(out, "progress sim=10.0s events=100") {
		t.Fatalf("first tick suppressed: %q", out)
	}
	if strings.Contains(out, "sim=20.0s") || strings.Contains(out, "cell 1") {
		t.Fatalf("rate-limited lines leaked through: %q", out)
	}
	if !strings.Contains(out, "done simulate sim=30.0s events=300") {
		t.Fatalf("missing done line: %q", out)
	}
}

func TestProgressRateLimitAdmitsAfterInterval(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(NewLogger("test", &buf, LogInfo), time.Nanosecond)
	time.Sleep(10 * time.Microsecond)
	p.Tick(1, 1)
	if !strings.Contains(buf.String(), "progress sim=1.0s events=1") {
		t.Fatalf("tick after interval suppressed: %q", buf.String())
	}
}

func TestNilProgressIsNoOp(t *testing.T) {
	var p *Progress
	p.Phase("x")
	p.Tick(1, 1)
	p.Stepf("y")
	p.Done("x", 1, 1)
}

func TestRecorderLifecycle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "tel")
	rec, err := Open(Config{Dir: dir, TraceEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Dir() != dir {
		t.Fatalf("Dir = %q, want %q", rec.Dir(), dir)
	}
	if rec.Tracer() == nil {
		t.Fatal("tracer missing with TraceEvents on")
	}
	rec.Metrics.Counter("n").Inc()
	rec.Tracer().EventFired(1, "tick", 1, 100)
	if err := rec.RecordDiskSample(DiskSample{T: 1, Disk: 0, Speed: "low"}); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{"disks.ndjson", "disks.csv", "metrics.json", "trace.json"} {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if len(raw) == 0 {
			t.Fatalf("%s is empty", name)
		}
	}

	// NDJSON lines parse individually.
	f, err := os.Open(filepath.Join(dir, "disks.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var s DiskSample
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("ndjson line %q: %v", sc.Text(), err)
		}
	}

	raw, err := os.ReadFile(filepath.Join(dir, "metrics.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Counters["n"] != 1 {
		t.Fatalf("metrics.json counters = %v", doc.Counters)
	}

	traceRaw, err := os.ReadFile(filepath.Join(dir, "trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	parseTrace(t, traceRaw)
}

func TestRecorderWithoutTraceEvents(t *testing.T) {
	dir := t.TempDir()
	rec, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Tracer() != nil {
		t.Fatal("tracer present without TraceEvents")
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "trace.json")); !os.IsNotExist(err) {
		t.Fatal("trace.json written without TraceEvents")
	}
}

func TestRecorderNilAndZeroValue(t *testing.T) {
	var nilRec *Recorder
	if nilRec.Dir() != "" || nilRec.Tracer() != nil {
		t.Fatal("nil recorder not inert")
	}
	if err := nilRec.RecordDiskSample(DiskSample{}); err != nil {
		t.Fatal(err)
	}
	if err := nilRec.Close(); err != nil {
		t.Fatal(err)
	}

	var zero Recorder // in-memory recorder: no files, no panic
	if err := zero.RecordDiskSample(DiskSample{}); err != nil {
		t.Fatal(err)
	}
	if err := zero.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("empty Dir accepted")
	}
}

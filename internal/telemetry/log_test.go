package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func TestLoggerLevels(t *testing.T) {
	cases := []struct {
		level LogLevel
		want  []string // substrings expected in output, in order
		skip  []string // substrings that must be absent
	}{
		{LogError, []string{"x: error: boom"}, []string{"info-line", "debug-line"}},
		{LogInfo, []string{"x: info-line", "x: error: boom"}, []string{"debug-line"}},
		{LogDebug, []string{"x: debug: debug-line", "x: info-line", "x: error: boom"}, nil},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		l := NewLogger("x", &buf, c.level)
		l.Debugf("debug-line")
		l.Infof("info-line")
		l.Errorf("boom")
		out := buf.String()
		for _, w := range c.want {
			if !strings.Contains(out, w) {
				t.Errorf("level %d: output missing %q:\n%s", c.level, w, out)
			}
		}
		for _, s := range c.skip {
			if strings.Contains(out, s) {
				t.Errorf("level %d: output should not contain %q:\n%s", c.level, s, out)
			}
		}
	}
}

func TestLevelFromFlags(t *testing.T) {
	if LevelFromFlags(true, true) != LogError {
		t.Error("-quiet must win over -v")
	}
	if LevelFromFlags(false, true) != LogDebug {
		t.Error("-v alone should yield LogDebug")
	}
	if LevelFromFlags(false, false) != LogInfo {
		t.Error("no flags should yield LogInfo")
	}
}

func TestLoggerFatalUsesInjectedExit(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger("x", &buf, LogError)
	code := -1
	l.exit = func(c int) { code = c }
	l.Fatalf("dead: %d", 7)
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(buf.String(), "x: error: dead: 7") {
		t.Fatalf("fatal line missing: %q", buf.String())
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Infof("dropped")
	l.Debugf("dropped")
	if l.Level() != LogInfo {
		t.Error("nil logger should report the default level")
	}
}

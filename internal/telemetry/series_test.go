package telemetry

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"testing"
)

func sampleAt(i int) DiskSample {
	return DiskSample{
		T:           100.5 * float64(i+1),
		Epoch:       i,
		Disk:        i % 3,
		Utilization: 1.0 / 3.0, // not exactly representable: precision probe
		TempC:       40 + 0.1*float64(i),
		Speed:       []string{"low", "high"}[i%2],
		Transitions: i * 2,
		AFRPct:      math.Pi * float64(i+1),
		QueueDepth:  i,
		EnergyJ:     12345.6789 * float64(i+1),
	}
}

// The NDJSON stream round-trips every sample exactly.
func TestSeriesNDJSONRoundTrip(t *testing.T) {
	var nd bytes.Buffer
	w := NewSeriesWriter(&nd, nil)
	const n = 5
	for i := 0; i < n; i++ {
		if err := w.Write(sampleAt(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(nd.String()), "\n")
	if len(lines) != n {
		t.Fatalf("got %d NDJSON lines, want %d", len(lines), n)
	}
	for i, line := range lines {
		var got DiskSample
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d not valid JSON: %v", i, err)
		}
		if got != sampleAt(i) {
			t.Fatalf("line %d round-trip: got %+v want %+v", i, got, sampleAt(i))
		}
	}
}

// The CSV stream round-trips with full float precision, and its header is
// the pinned schema — downstream tooling (arrayreport's series loader, the
// CI smoke check) parses these columns by name.
func TestSeriesCSVRoundTripAndHeader(t *testing.T) {
	var csvBuf bytes.Buffer
	w := NewSeriesWriter(nil, &csvBuf)
	const n = 4
	for i := 0; i < n; i++ {
		if err := w.Write(sampleAt(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(bytes.NewReader(csvBuf.Bytes())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != n+1 {
		t.Fatalf("got %d CSV rows, want %d", len(rows), n+1)
	}

	const wantHeader = "t,epoch,disk,util,temp_c,speed,transitions,afr_pct,queue,energy_j"
	if got := strings.Join(rows[0], ","); got != wantHeader {
		t.Fatalf("CSV header drifted:\n got %q\nwant %q", got, wantHeader)
	}

	for i, row := range rows[1:] {
		want := sampleAt(i)
		pf := func(col int) float64 {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				t.Fatalf("row %d col %d: %v", i, col, err)
			}
			return v
		}
		pi := func(col int) int {
			v, err := strconv.Atoi(row[col])
			if err != nil {
				t.Fatalf("row %d col %d: %v", i, col, err)
			}
			return v
		}
		got := DiskSample{
			T: pf(0), Epoch: pi(1), Disk: pi(2), Utilization: pf(3),
			TempC: pf(4), Speed: row[5], Transitions: pi(6), AFRPct: pf(7),
			QueueDepth: pi(8), EnergyJ: pf(9),
		}
		if got != want {
			t.Fatalf("row %d round-trip: got %+v want %+v", i, got, want)
		}
	}
}

// NDJSON field names match the CSV column names one-to-one, in order.
func TestSeriesSchemasAgree(t *testing.T) {
	var nd bytes.Buffer
	w := NewSeriesWriter(&nd, nil)
	if err := w.Write(sampleAt(0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Field order in the marshalled JSON follows the struct declaration,
	// which is also the CSV column order.
	line := strings.TrimSpace(nd.String())
	var keys []string
	dec := json.NewDecoder(strings.NewReader(line))
	tok, err := dec.Token() // opening brace
	if err != nil || tok != json.Delim('{') {
		t.Fatalf("bad JSON start: %v %v", tok, err)
	}
	for dec.More() {
		k, err := dec.Token()
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k.(string))
		var v any
		if err := dec.Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	if got := strings.Join(keys, ","); got != seriesColumns {
		t.Fatalf("NDJSON fields %q != CSV columns %q", got, seriesColumns)
	}
}

// Either output may be nil, and a nil writer is a no-op.
func TestSeriesNilTargets(t *testing.T) {
	var w *SeriesWriter
	if err := w.Write(sampleAt(0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	both := NewSeriesWriter(nil, nil)
	if err := both.Write(sampleAt(0)); err != nil {
		t.Fatal(err)
	}
	if err := both.Flush(); err != nil {
		t.Fatal(err)
	}
}

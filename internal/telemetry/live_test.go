package telemetry

import (
	"sync"
	"testing"
)

func TestLivePublishAndSnapshot(t *testing.T) {
	l := NewLive()
	l.Tick(12.5, 100, 40, 41)
	l.PublishEpoch(3, 900.25, 1.5, 7, 4, 2)
	s := l.Snapshot()
	want := LiveSnapshot{
		SimSeconds: 12.5, Events: 100, Requests: 40, Arrivals: 41,
		EnergyJ: 900.25, WorstAFRPct: 1.5, QueueDepth: 7,
		DisksHigh: 4, DisksLow: 2, Epoch: 3,
	}
	if s != want {
		t.Fatalf("snapshot %+v, want %+v", s, want)
	}
}

func TestLiveNilSafe(t *testing.T) {
	var l *Live
	l.Tick(1, 2, 3, 4)
	l.PublishEpoch(1, 2, 3, 4, 5, 6)
	if s := l.Snapshot(); s != (LiveSnapshot{}) {
		t.Fatalf("nil live snapshot %+v, want zero", s)
	}
}

// TestLiveTickAddsNoAllocs pins the publish path at zero allocations: the
// ops plane must not perturb the simulation's allocation profile even when
// it is on, let alone when it is off.
func TestLiveTickAddsNoAllocs(t *testing.T) {
	l := NewLive()
	var i uint64
	if n := testing.AllocsPerRun(100, func() {
		i++
		l.Tick(float64(i), i, i, i)
	}); n != 0 {
		t.Fatalf("Live.Tick allocates %v per call, want 0", n)
	}
	var off *Live
	if n := testing.AllocsPerRun(100, func() {
		i++
		off.Tick(float64(i), i, i, i)
	}); n != 0 {
		t.Fatalf("nil Live.Tick allocates %v per call, want 0", n)
	}
}

// TestLiveSnapshotConsistentUnderRace hammers Snapshot during writes; under
// -race this proves the seqlock protocol is data-race-free, and monotone
// counters prove cross-field consistency.
func TestLiveSnapshotConsistentUnderRace(t *testing.T) {
	l := NewLive()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := l.Snapshot()
				if s.Events < last {
					t.Errorf("events went backwards: %d -> %d", last, s.Events)
					return
				}
				if float64(s.Events) != s.SimSeconds {
					t.Errorf("torn snapshot: events %d but sim time %v", s.Events, s.SimSeconds)
					return
				}
				last = s.Events
			}
		}()
	}
	for i := uint64(1); i <= 50000; i++ {
		l.Tick(float64(i), i, i, i)
	}
	close(stop)
	wg.Wait()
}

package telemetry

//simlint:allowfile detrand -- the sweep tracker measures wall-clock pace of cells for ETA and ops reporting; it never feeds simulation state

import (
	"errors"
	"sync"
	"time"

	"repro/internal/des"
)

// CellState is a sweep cell's position in its lifecycle as seen by the ops
// plane: pending → running → done | failed, with a transient retried state
// between a failed attempt and the next one.
type CellState string

const (
	CellStatePending CellState = "pending"
	CellStateRunning CellState = "running"
	CellStateDone    CellState = "done"
	CellStateFailed  CellState = "failed"
	CellStateRetried CellState = "retried"
)

// SweepTracker is the ops plane's view of a running sweep: one state-machine
// entry per cell, completed-cell wall-clocks for the ETA, and per-cell
// Live/Watch handles for the cells currently executing. Unlike Live it is
// mutex-based — every method is called at cell granularity (cell start,
// cell finish), never on the simulation hot path, and /progress readers are
// humans polling at seconds granularity, so lock-freedom buys nothing here.
// A nil *SweepTracker is a valid no-op sink.
type SweepTracker struct {
	mu          sync.Mutex
	now         func() time.Time // injectable for deterministic tests
	start       time.Time
	parallelism int
	order       []string
	cells       map[string]*cellTrack
	doneWall    []float64 // wall seconds of completed cells, for the ETA
}

type cellTrack struct {
	state     CellState
	attempts  int
	startedAt time.Time
	wall      float64 // final wall seconds once done/failed
	events    uint64  // final events fired once done/failed
	errMsg    string
	stall     *des.StallError
	live      *Live
	watch     *des.Watch
}

// SweepCellStatus is one cell's row in a SweepSnapshot.
type SweepCellStatus struct {
	Cell     string    `json:"cell"`
	State    CellState `json:"state"`
	Attempts int       `json:"attempts,omitempty"`
	// WallSeconds is the cell's elapsed wall-clock: final for done/failed
	// cells, running so far for running ones.
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	// SimSeconds and Events come from the running cell's live view (final
	// values once the cell completes).
	SimSeconds float64 `json:"sim_seconds,omitempty"`
	Events     uint64  `json:"events,omitempty"`
	Requests   uint64  `json:"requests,omitempty"`
	// Streak/StallLimit expose watchdog pressure for running cells.
	Streak     uint64          `json:"streak,omitempty"`
	StallLimit uint64          `json:"stall_limit,omitempty"`
	LastEvent  string          `json:"last_event,omitempty"`
	Error      string          `json:"error,omitempty"`
	Stall      *des.StallError `json:"stall,omitempty"`
}

// SweepSnapshot is a consistent view of the whole sweep.
type SweepSnapshot struct {
	Total          int     `json:"total"`
	Pending        int     `json:"pending"`
	Running        int     `json:"running"`
	Done           int     `json:"done"`
	Failed         int     `json:"failed"`
	Retried        int     `json:"retried"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// EventsPerSecond is aggregate simulated-event throughput: events of
	// finished cells plus the live counters of running ones, over elapsed
	// wall time.
	EventsPerSecond float64 `json:"events_per_second"`
	// ETASeconds estimates time to sweep completion from the mean
	// wall-clock of completed cells spread over the worker lanes; -1 until
	// the first cell completes.
	ETASeconds float64           `json:"eta_seconds"`
	Cells      []SweepCellStatus `json:"cells"`
}

// SetClock replaces the tracker's wall-clock source so tests (including the
// ops server's golden exposition test) get deterministic elapsed times. Call
// before any cells start.
func (t *SweepTracker) SetClock(now func() time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now = now
	t.start = now()
}

// NewSweepTracker returns a tracker with every cell pending, in the given
// (deterministic) order. parallelism is the sweep's worker-lane count, used
// by the ETA; values < 1 mean 1.
func NewSweepTracker(cells []string, parallelism int) *SweepTracker {
	if parallelism < 1 {
		parallelism = 1
	}
	t := &SweepTracker{
		now:         time.Now,
		start:       time.Now(),
		parallelism: parallelism,
		order:       append([]string(nil), cells...),
		cells:       make(map[string]*cellTrack, len(cells)),
	}
	for _, k := range t.order {
		t.cells[k] = &cellTrack{state: CellStatePending}
	}
	return t
}

// StartCell marks a cell running (incrementing its attempt counter) and
// returns fresh Live/Watch handles for the simulation about to run it. Nil
// tracker returns nil handles, which downstream treats as ops-off.
func (t *SweepTracker) StartCell(key string) (*Live, *des.Watch) {
	if t == nil {
		return nil, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.cell(key)
	c.state = CellStateRunning
	c.attempts++
	c.startedAt = t.now()
	c.live = NewLive()
	c.watch = des.NewWatch()
	return c.live, c.watch
}

// CellDone marks a cell completed, recording its wall-clock and final event
// count for the ETA and throughput aggregates.
func (t *SweepTracker) CellDone(key string, wallSeconds float64, events uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.cell(key)
	c.state = CellStateDone
	c.wall = wallSeconds
	c.events = events
	t.doneWall = append(t.doneWall, wallSeconds)
}

// CellRetrying records a failed attempt that will be retried.
func (t *SweepTracker) CellRetrying(key string, err error) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.cell(key)
	c.state = CellStateRetried
	c.errMsg = errString(err)
	c.stall = stallOf(err)
	c.capture()
}

// CellFailed marks a cell terminally failed (attempts exhausted).
func (t *SweepTracker) CellFailed(key string, err error, wallSeconds float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.cell(key)
	c.state = CellStateFailed
	c.wall = wallSeconds
	c.errMsg = errString(err)
	c.stall = stallOf(err)
	c.capture()
}

// cell returns the tracked entry, creating one for unknown keys so a caller
// bug degrades to an extra row rather than a panic.
func (t *SweepTracker) cell(key string) *cellTrack {
	c, ok := t.cells[key]
	if !ok {
		c = &cellTrack{state: CellStatePending}
		t.cells[key] = c
		t.order = append(t.order, key)
	}
	return c
}

// capture freezes the live event counter into the cell record (caller holds
// t.mu; used when an attempt ends without a clean completion).
func (c *cellTrack) capture() {
	if c.watch != nil {
		c.events = c.watch.Snapshot().Fired
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func stallOf(err error) *des.StallError {
	var serr *des.StallError
	if errors.As(err, &serr) {
		return serr
	}
	return nil
}

// Snapshot returns the sweep's current state: per-cell rows in sweep order,
// aggregate counts, throughput, and the wall-clock-derived ETA. Safe from
// any goroutine; a nil tracker yields the zero snapshot.
func (t *SweepTracker) Snapshot() SweepSnapshot {
	if t == nil {
		return SweepSnapshot{ETASeconds: -1}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	snap := SweepSnapshot{
		Total:          len(t.order),
		ElapsedSeconds: now.Sub(t.start).Seconds(),
		ETASeconds:     -1,
		Cells:          make([]SweepCellStatus, 0, len(t.order)),
	}
	var events float64
	var runningElapsed []float64
	for _, key := range t.order {
		c := t.cells[key]
		row := SweepCellStatus{
			Cell:     key,
			State:    c.state,
			Attempts: c.attempts,
			Error:    c.errMsg,
			Stall:    c.stall,
		}
		switch c.state {
		case CellStatePending:
			snap.Pending++
		case CellStateRunning:
			snap.Running++
			row.WallSeconds = now.Sub(c.startedAt).Seconds()
			ls := c.live.Snapshot()
			ws := c.watch.Snapshot()
			row.SimSeconds = ls.SimSeconds
			row.Events = ws.Fired
			row.Requests = ls.Requests
			row.Streak = ws.Streak
			row.StallLimit = ws.StallLimit
			row.LastEvent = ws.LastLabel
			if ws.Stall != nil {
				row.Stall = ws.Stall
			}
			events += float64(ws.Fired)
			runningElapsed = append(runningElapsed, row.WallSeconds)
		case CellStateDone:
			snap.Done++
			row.WallSeconds = c.wall
			row.Events = c.events
			events += float64(c.events)
			if c.attempts > 1 {
				snap.Retried++
			}
		case CellStateFailed:
			snap.Failed++
			row.WallSeconds = c.wall
			row.Events = c.events
			events += float64(c.events)
		case CellStateRetried:
			snap.Retried++
			row.Events = c.events
			events += float64(c.events)
		}
		snap.Cells = append(snap.Cells, row)
	}
	if snap.ElapsedSeconds > 0 {
		snap.EventsPerSecond = events / snap.ElapsedSeconds
	}
	// ETA heuristic: completed cells predict the mean cell wall-clock;
	// running cells get credit for time already spent, pending cells cost a
	// full mean each, and the remaining work spreads across the worker
	// lanes. Coarse by construction — it exists so an operator can tell
	// "minutes" from "hours", not to be a scheduler.
	if n := len(t.doneWall); n > 0 {
		var sum float64
		for _, w := range t.doneWall {
			sum += w
		}
		mean := sum / float64(n)
		remaining := float64(snap.Pending) * mean
		for _, el := range runningElapsed {
			if left := mean - el; left > 0 {
				remaining += left
			}
		}
		lanes := t.parallelism
		if width := snap.Running + snap.Pending; width > 0 && width < lanes {
			lanes = width
		}
		if lanes < 1 {
			lanes = 1
		}
		snap.ETASeconds = remaining / float64(lanes)
	}
	return snap
}

package telemetry

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/atomicio"
)

// Config parameterizes a file-backed Recorder.
type Config struct {
	// Dir is the output directory (created if missing). The recorder
	// writes disks.ndjson, disks.csv, metrics.json, and — with TraceEvents
	// — trace.json into it.
	Dir string
	// TraceEvents enables the Chrome trace_event DES trace.
	TraceEvents bool
	// TraceSampleEvery records every Nth DES event of each kind in the
	// Chrome trace; values < 1 mean every event.
	TraceSampleEvery int
	// TraceMaxEvents hard-caps the Chrome trace record count; values < 1
	// mean the default of 1,000,000.
	TraceMaxEvents int
	// TraceDecisions enables the policy decision log (decisions.ndjson).
	TraceDecisions bool
}

// Recorder bundles the telemetry sinks one simulation writes to: a metrics
// registry, the per-disk time series, an optional DES event tracer, and an
// optional progress logger. A nil *Recorder disables everything; the zero
// value is a valid in-memory-only recorder (set Metrics/Progress as needed).
type Recorder struct {
	// Metrics is the run's metrics registry; nil disables metric recording
	// (handles bound from a nil registry are no-op sinks).
	Metrics *Registry
	// Progress, when non-nil, receives phase/progress/done lines.
	Progress *Progress
	// Decisions, when non-nil, receives one record per policy decision;
	// Close writes it to decisions.ndjson when the recorder has a
	// directory.
	Decisions *DecisionLog
	// Live, when non-nil, receives the lock-free ops-plane snapshot the
	// simulation publishes for /metrics and /progress. Nil (the default)
	// keeps the hot path at one nil check and zero allocations.
	Live *Live

	series *SeriesWriter
	tracer *ChromeTracer
	files  []*atomicio.File
	dir    string
}

// Open creates cfg.Dir and returns a Recorder writing into it.
func Open(cfg Config) (*Recorder, error) {
	if cfg.Dir == "" {
		return nil, errors.New("telemetry: empty output directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	r := &Recorder{Metrics: NewRegistry(), dir: cfg.Dir}
	// Artifacts stream into atomic temp files and only appear under their
	// final names when Close commits them, so a run killed mid-flight never
	// leaves a truncated disks.ndjson / disks.csv / trace.json behind.
	open := func(name string) (*atomicio.File, error) {
		f, err := atomicio.Create(filepath.Join(cfg.Dir, name))
		if err != nil {
			r.closeFiles()
			return nil, fmt.Errorf("telemetry: %w", err)
		}
		r.files = append(r.files, f)
		return f, nil
	}
	nd, err := open("disks.ndjson")
	if err != nil {
		return nil, err
	}
	csvf, err := open("disks.csv")
	if err != nil {
		return nil, err
	}
	r.series = NewSeriesWriter(nd, csvf)
	if cfg.TraceEvents {
		tf, err := open("trace.json")
		if err != nil {
			return nil, err
		}
		r.tracer = NewChromeTracer(tf, cfg.TraceSampleEvery, cfg.TraceMaxEvents)
	}
	if cfg.TraceDecisions {
		r.Decisions = NewDecisionLog()
	}
	return r, nil
}

// Dir returns the output directory ("" for an in-memory recorder).
func (r *Recorder) Dir() string {
	if r == nil {
		return ""
	}
	return r.dir
}

// Tracer returns the Chrome tracer, or nil when event tracing is off.
func (r *Recorder) Tracer() *ChromeTracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// RecordDiskSample appends one per-disk time-series sample.
func (r *Recorder) RecordDiskSample(s DiskSample) error {
	if r == nil {
		return nil
	}
	return r.series.Write(s)
}

func (r *Recorder) closeFiles() error {
	var first error
	for _, f := range r.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	r.files = nil
	return first
}

// Close flushes the series, finalizes the Chrome trace, dumps the metrics
// registry to metrics.json, and closes all files. It is safe on nil.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	keep(r.series.Flush())
	keep(r.tracer.Close())
	if r.dir != "" && r.Metrics != nil {
		f, err := atomicio.Create(filepath.Join(r.dir, "metrics.json"))
		if err != nil {
			keep(err)
		} else {
			keep(r.Metrics.WriteJSON(f))
			keep(f.Close())
		}
	}
	if r.dir != "" && r.Decisions != nil {
		f, err := atomicio.Create(filepath.Join(r.dir, "decisions.ndjson"))
		if err != nil {
			keep(err)
		} else {
			keep(r.Decisions.WriteNDJSON(f))
			keep(f.Close())
		}
	}
	keep(r.closeFiles())
	return first
}

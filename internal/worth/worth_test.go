package worth

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/array"
)

// fakeResult builds an array.Result with the given duration, energy, and
// per-disk AFRs.
func fakeResult(duration, energyJ float64, afrs ...float64) *array.Result {
	res := &array.Result{Duration: duration, EnergyJ: energyJ}
	for i, a := range afrs {
		res.PerDisk = append(res.PerDisk, array.DiskResult{ID: i, AFR: a})
	}
	return res
}

func TestDefaultCostModelValid(t *testing.T) {
	if err := DefaultCostModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCostModelValidation(t *testing.T) {
	m := DefaultCostModel()
	m.EnergyPerKWh = 0
	if m.Validate() == nil {
		t.Fatal("zero energy price accepted")
	}
	m = DefaultCostModel()
	m.DiskReplacement = -1
	if m.Validate() == nil {
		t.Fatal("negative price accepted")
	}
}

func TestAssessArithmetic(t *testing.T) {
	m := CostModel{EnergyPerKWh: 0.10, DiskReplacement: 300, DataLossPerFailure: 700}
	// One day at 1 kW = 24 kWh -> 8760 kWh/year.
	res := fakeResult(86400, 1000.0*86400, 10, 5) // AFRs 10% and 5%
	a, err := Assess(m, res)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.EnergyKWhPerYear-8760) > 1 {
		t.Fatalf("kWh/year = %v, want 8760", a.EnergyKWhPerYear)
	}
	if math.Abs(a.EnergyCostPerYear-876) > 0.2 {
		t.Fatalf("energy $/year = %v", a.EnergyCostPerYear)
	}
	if math.Abs(a.ExpectedFailuresPerYear-0.15) > 1e-12 {
		t.Fatalf("failures/year = %v", a.ExpectedFailuresPerYear)
	}
	if math.Abs(a.FailureCostPerYear-0.15*1000) > 1e-9 {
		t.Fatalf("failure $/year = %v", a.FailureCostPerYear)
	}
	if math.Abs(a.TotalPerYear-(876+150)) > 0.3 {
		t.Fatalf("total = %v", a.TotalPerYear)
	}
}

func TestAssessRejectsEmpty(t *testing.T) {
	if _, err := Assess(DefaultCostModel(), nil); err == nil {
		t.Fatal("nil result accepted")
	}
	if _, err := Assess(DefaultCostModel(), fakeResult(0, 1, 5)); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestCompareVerdict(t *testing.T) {
	m := CostModel{EnergyPerKWh: 0.10, DiskReplacement: 300, DataLossPerFailure: 700}
	baseline := fakeResult(86400, 1000.0*86400, 10, 10) // 8760 kWh, 0.2 fail
	// Scheme A: halves energy, same reliability -> worthwhile.
	schemeA := fakeResult(86400, 500.0*86400, 10, 10)
	v, err := Compare(m, schemeA, baseline)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Worthwhile || v.NetPerYear <= 0 {
		t.Fatalf("pure energy saving not worthwhile: %+v", v)
	}
	if math.Abs(v.EnergySavingPerYear-438) > 0.2 {
		t.Fatalf("saving = %v", v.EnergySavingPerYear)
	}
	// Scheme B: saves $438 of energy but adds one expected failure/year
	// ($1000) -> not worthwhile. This is the paper's §3.5 inequality.
	schemeB := fakeResult(86400, 500.0*86400, 60, 60)
	v, err = Compare(m, schemeB, baseline)
	if err != nil {
		t.Fatal(err)
	}
	if v.Worthwhile {
		t.Fatalf("reliability-destroying scheme judged worthwhile: %+v", v)
	}
	if v.ReliabilityPenaltyPerYear <= 0 {
		t.Fatalf("penalty = %v", v.ReliabilityPenaltyPerYear)
	}
}

func TestSimulateFailuresMatchesExpectation(t *testing.T) {
	res := fakeResult(86400, 1, 5, 5, 5, 5) // 4 disks at 5% AFR
	sim, err := SimulateFailures(res, 1, 200000, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Poisson with lambda = 0.2: mean 0.2, P(>=1) = 1-e^-0.2 = 0.1813.
	if math.Abs(sim.MeanFailures-0.2) > 0.01 {
		t.Fatalf("mean failures = %v, want 0.2", sim.MeanFailures)
	}
	want1 := 1 - math.Exp(-0.2)
	if math.Abs(sim.PAtLeastOne-want1) > 0.01 {
		t.Fatalf("P(>=1) = %v, want %v", sim.PAtLeastOne, want1)
	}
	want2 := 1 - math.Exp(-0.2) - 0.2*math.Exp(-0.2)
	if math.Abs(sim.PAtLeastTwo-want2) > 0.01 {
		t.Fatalf("P(>=2) = %v, want %v", sim.PAtLeastTwo, want2)
	}
}

func TestSimulateFailuresValidation(t *testing.T) {
	res := fakeResult(1, 1, 5)
	if _, err := SimulateFailures(nil, 1, 10, 1); err == nil {
		t.Fatal("nil result accepted")
	}
	if _, err := SimulateFailures(res, 0, 10, 1); err == nil {
		t.Fatal("zero years accepted")
	}
	if _, err := SimulateFailures(res, 1, 0, 1); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, lambda := range []float64{0.3, 4, 50} {
		var sum, sumSq float64
		const n = 100000
		for i := 0; i < n; i++ {
			v := float64(poisson(rng, lambda))
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-lambda)/lambda > 0.03 {
			t.Errorf("lambda=%v: mean %v", lambda, mean)
		}
		if math.Abs(variance-lambda)/lambda > 0.06 {
			t.Errorf("lambda=%v: variance %v", lambda, variance)
		}
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Fatal("non-positive lambda must give 0")
	}
}

// Property: the verdict's net is exactly saving minus penalty, and
// symmetric comparisons are zero.
func TestPropertyVerdictArithmetic(t *testing.T) {
	m := DefaultCostModel()
	f := func(e1, e2 uint32, a1, a2 uint8) bool {
		r1 := fakeResult(86400, float64(e1%1000000)+1, float64(a1%50))
		r2 := fakeResult(86400, float64(e2%1000000)+1, float64(a2%50))
		v, err := Compare(m, r1, r2)
		if err != nil {
			return false
		}
		if math.Abs(v.NetPerYear-(v.EnergySavingPerYear-v.ReliabilityPenaltyPerYear)) > 1e-9 {
			return false
		}
		self, err := Compare(m, r1, r1)
		return err == nil && math.Abs(self.NetPerYear) < 1e-9 && !self.Worthwhile
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Package worth operationalizes the paper's title question — "is it
// worthwhile?" — as a cost model. The paper argues (§3.5) that "the value
// of lost data plus the price of failed disks substantially outweigh the
// energy-saving gained" when a scheme runs disks hot on transitions; this
// package turns a simulation result into dollars per year on both sides of
// that inequality and also estimates failure-event probabilities by Monte
// Carlo over the per-disk AFRs.
package worth

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/array"
)

// CostModel prices the trade-off.
type CostModel struct {
	// EnergyPerKWh is the electricity price in $/kWh.
	EnergyPerKWh float64
	// DiskReplacement is the cost of one failed drive in $ (hardware +
	// service).
	DiskReplacement float64
	// DataLossPerFailure is the expected cost of data loss and recovery
	// per drive failure in $ (restore time, degraded service, and the
	// value of any unrecoverable data). For redundant arrays this is the
	// expected cost conditioned on the redundancy actually absorbing most
	// failures.
	DataLossPerFailure float64
}

// DefaultCostModel returns an intentionally conservative 2008-flavoured
// price book: $0.10/kWh, $300 per replacement drive, $1,000 expected
// data-loss cost per failure.
func DefaultCostModel() CostModel {
	return CostModel{
		EnergyPerKWh:       0.10,
		DiskReplacement:    300,
		DataLossPerFailure: 1000,
	}
}

// Validate reports the first invalid price.
func (m CostModel) Validate() error {
	if m.EnergyPerKWh < 0 || m.DiskReplacement < 0 || m.DataLossPerFailure < 0 {
		return errors.New("worth: negative prices")
	}
	if m.EnergyPerKWh == 0 {
		return errors.New("worth: zero energy price makes every scheme worthless")
	}
	return nil
}

// Assessment is the yearly cost account of one policy run, relative to a
// baseline run on the same workload and array.
type Assessment struct {
	// EnergyKWhPerYear is the run's energy use extrapolated to a year.
	EnergyKWhPerYear float64
	// EnergyCostPerYear prices it.
	EnergyCostPerYear float64
	// ExpectedFailuresPerYear sums the per-disk AFRs.
	ExpectedFailuresPerYear float64
	// FailureCostPerYear prices replacements plus data loss.
	FailureCostPerYear float64
	// TotalPerYear is energy plus failure cost.
	TotalPerYear float64
}

// Assess converts one simulation result into a yearly cost account.
func Assess(m CostModel, res *array.Result) (Assessment, error) {
	if err := m.Validate(); err != nil {
		return Assessment{}, err
	}
	if res == nil || res.Duration <= 0 {
		return Assessment{}, errors.New("worth: empty result")
	}
	const yearSeconds = 365 * 86400.0
	scale := yearSeconds / res.Duration
	kwh := res.EnergyJ * scale / 3.6e6
	var failures float64
	for _, d := range res.PerDisk {
		failures += d.AFR / 100
	}
	a := Assessment{
		EnergyKWhPerYear:        kwh,
		EnergyCostPerYear:       kwh * m.EnergyPerKWh,
		ExpectedFailuresPerYear: failures,
	}
	a.FailureCostPerYear = failures * (m.DiskReplacement + m.DataLossPerFailure)
	a.TotalPerYear = a.EnergyCostPerYear + a.FailureCostPerYear
	return a, nil
}

// Verdict compares a scheme against a baseline (typically always-on) and
// answers the title question.
type Verdict struct {
	Scheme, Baseline Assessment
	// EnergySavingPerYear is the $ saved on electricity (positive =
	// scheme cheaper).
	EnergySavingPerYear float64
	// ReliabilityPenaltyPerYear is the extra $ of expected failures
	// (positive = scheme riskier).
	ReliabilityPenaltyPerYear float64
	// NetPerYear is saving minus penalty; positive means worthwhile.
	NetPerYear float64
	// Worthwhile is NetPerYear > 0.
	Worthwhile bool
}

// Compare runs the title-question arithmetic.
func Compare(m CostModel, scheme, baseline *array.Result) (Verdict, error) {
	s, err := Assess(m, scheme)
	if err != nil {
		return Verdict{}, fmt.Errorf("worth: scheme: %w", err)
	}
	b, err := Assess(m, baseline)
	if err != nil {
		return Verdict{}, fmt.Errorf("worth: baseline: %w", err)
	}
	v := Verdict{
		Scheme:                    s,
		Baseline:                  b,
		EnergySavingPerYear:       b.EnergyCostPerYear - s.EnergyCostPerYear,
		ReliabilityPenaltyPerYear: s.FailureCostPerYear - b.FailureCostPerYear,
	}
	v.NetPerYear = v.EnergySavingPerYear - v.ReliabilityPenaltyPerYear
	v.Worthwhile = v.NetPerYear > 0
	return v, nil
}

// FailureSim is a Monte-Carlo estimate of failure-event probabilities over
// a horizon, treating each disk's failures as a Poisson process at its AFR.
type FailureSim struct {
	// PAtLeastOne is the probability of >=1 disk failure over the horizon.
	PAtLeastOne float64
	// PAtLeastTwo is the probability of >=2 failures (data-loss exposure
	// for singly-redundant arrays if they overlap; an upper bound here).
	PAtLeastTwo float64
	// MeanFailures is the expected failure count over the horizon.
	MeanFailures float64
}

// SimulateFailures runs trials of `years` each over the per-disk AFRs.
func SimulateFailures(res *array.Result, years float64, trials int, seed int64) (FailureSim, error) {
	if res == nil || len(res.PerDisk) == 0 {
		return FailureSim{}, errors.New("worth: empty result")
	}
	if years <= 0 || trials <= 0 {
		return FailureSim{}, errors.New("worth: years and trials must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	var one, two, total int
	for t := 0; t < trials; t++ {
		failures := 0
		for _, d := range res.PerDisk {
			lambda := d.AFR / 100 * years
			failures += poisson(rng, lambda)
		}
		total += failures
		if failures >= 1 {
			one++
		}
		if failures >= 2 {
			two++
		}
	}
	return FailureSim{
		PAtLeastOne:  float64(one) / float64(trials),
		PAtLeastTwo:  float64(two) / float64(trials),
		MeanFailures: float64(total) / float64(trials),
	}, nil
}

// poisson draws from a Poisson distribution by Knuth's method for small
// lambda and a normal approximation beyond.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

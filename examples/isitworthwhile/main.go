// Isitworthwhile: the paper's title, answered in dollars. Runs every
// policy on the same day, prices the energy saved against the expected
// failure cost (PRESS AFR × replacement + data-loss cost), and prints the
// verdict the paper's §3.5 reasons about qualitatively.
package main

import (
	"flag"
	"fmt"
	"log"

	diskarray "repro"
)

func main() {
	disks := flag.Int("disks", 12, "array size")
	requests := flag.Int("requests", 148008, "requests in the compressed day")
	kwh := flag.Float64("kwh", 0.10, "electricity price $/kWh")
	diskCost := flag.Float64("disk", 300, "replacement cost per failed drive $")
	lossCost := flag.Float64("loss", 1000, "expected data-loss cost per failure $")
	flag.Parse()

	cfg := diskarray.DefaultGenConfig()
	cfg.NumRequests = *requests
	cfg.DiurnalProfile = diskarray.DefaultDiurnalProfile()
	duration := float64(cfg.NumRequests) * cfg.MeanInterarrival
	cfg.PhaseSeconds = duration / 12
	cfg.PhaseRotate = 0.10
	trace, err := diskarray.GenerateTrace(cfg)
	if err != nil {
		log.Fatal(err)
	}

	model := diskarray.CostModel{
		EnergyPerKWh:       *kwh,
		DiskReplacement:    *diskCost,
		DataLossPerFailure: *lossCost,
	}

	run := func(p diskarray.Policy) *diskarray.SimResult {
		res, err := diskarray.Simulate(diskarray.SimConfig{
			Disks: *disks, Trace: trace, Policy: p, EpochSeconds: duration / 24,
		})
		if err != nil {
			log.Fatalf("%s: %v", p.Name(), err)
		}
		return res
	}

	baseline := run(diskarray.NewAlwaysOn())
	base, err := diskarray.AssessCost(model, baseline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("array of %d disks, one synthetic WorldCup98-like day, prices: %.2f $/kWh, %g $/disk, %g $/loss\n\n",
		*disks, *kwh, *diskCost, *lossCost)
	fmt.Printf("baseline always-on: %.0f kWh/yr = $%.0f/yr energy, %.3f failures/yr = $%.0f/yr risk\n\n",
		base.EnergyKWhPerYear, base.EnergyCostPerYear,
		base.ExpectedFailuresPerYear, base.FailureCostPerYear)

	fmt.Printf("%-14s %13s %16s %11s %12s\n",
		"scheme", "energy $/yr", "saves vs base", "risk $/yr", "net $/yr")
	schemes := []diskarray.Policy{
		diskarray.NewREAD(diskarray.READConfig{}),
		diskarray.NewMAID(diskarray.MAIDConfig{}),
		diskarray.NewPDC(diskarray.PDCConfig{}),
		diskarray.NewDRPM(diskarray.DRPMConfig{}),
	}
	for _, p := range schemes {
		res := run(p)
		v, err := diskarray.CompareCost(model, res, baseline)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "NOT worthwhile"
		if v.Worthwhile {
			verdict = "worthwhile"
		}
		fmt.Printf("%-14s %13.0f %16.0f %11.0f %12.0f   %s\n",
			p.Name(), v.Scheme.EnergyCostPerYear, v.EnergySavingPerYear,
			v.Scheme.FailureCostPerYear, v.NetPerYear, verdict)
	}

	fmt.Println("\nfailure-probability check (Monte Carlo, 5-year horizon):")
	for _, p := range []diskarray.Policy{diskarray.NewREAD(diskarray.READConfig{}), diskarray.NewDRPM(diskarray.DRPMConfig{})} {
		res := run(p)
		sim, err := diskarray.SimulateFailures(res, 5, 50000, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s P(>=1 failure) = %.1f%%   P(>=2) = %.1f%%   E[failures] = %.2f\n",
			p.Name(), sim.PAtLeastOne*100, sim.PAtLeastTwo*100, sim.MeanFailures)
	}
}

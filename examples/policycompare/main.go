// Policycompare: a miniature of the paper's Figure 7 — READ vs MAID vs PDC
// over a sweep of array sizes, printed as the three panels (reliability,
// energy, mean response time) plus the headline improvement lines.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	diskarray "repro"
	"repro/internal/experiment"
)

func main() {
	scale := flag.Float64("scale", 0.01, "trace scale (1 = the full paper-size day)")
	heavy := flag.Bool("heavy", false, "use the heavy-workload intensity")
	drpm := flag.Bool("drpm", false, "include the uncapped DRPM ablation policy")
	flag.Parse()

	cfg := diskarray.DefaultSweepConfig()
	cfg.Scale = *scale
	if *heavy {
		cfg.Intensity = diskarray.HeavyIntensity
	}
	if *drpm {
		cfg.Policies = append(cfg.Policies, diskarray.KindDRPM)
	}

	res, err := diskarray.RunSweep(cfg)
	if err != nil {
		log.Fatal(err)
	}

	cond := "light"
	if *heavy {
		cond = "heavy"
	}
	fmt.Printf("policy comparison, %s workload, trace scale %.3g\n\n", cond, *scale)
	if err := experiment.RenderSweepTable(os.Stdout, res, diskarray.MetricAFR,
		"Figure 7a — array AFR (least reliable disk)"); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := experiment.RenderSweepTable(os.Stdout, res, diskarray.MetricEnergy,
		"Figure 7b — energy consumption"); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := experiment.RenderSweepTable(os.Stdout, res, diskarray.MetricResponse,
		"Figure 7c — mean response time"); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for _, m := range []diskarray.Metric{diskarray.MetricAFR, diskarray.MetricEnergy, diskarray.MetricResponse} {
		if err := experiment.RenderImprovements(os.Stdout, res, m, diskarray.KindREAD); err != nil {
			log.Fatal(err)
		}
	}
}

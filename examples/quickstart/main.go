// Quickstart: simulate a 10-disk two-speed array serving a synthetic
// WorldCup98-like day under the paper's READ policy and print the three
// headline metrics (mean response time, energy, PRESS array AFR).
package main

import (
	"fmt"
	"log"

	diskarray "repro"
)

func main() {
	// A scaled-down day: same arrival intensity, 2% of the requests.
	cfg := diskarray.DefaultGenConfig()
	cfg.NumRequests = cfg.NumRequests / 50
	cfg.DiurnalProfile = diskarray.DefaultDiurnalProfile()

	trace, err := diskarray.GenerateTrace(cfg)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := trace.ComputeStats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d files, %d requests over %.0f s (θ = %.2f)\n",
		stats.Files, stats.Requests, stats.Duration, stats.AccessTheta)

	read := diskarray.NewREAD(diskarray.READConfig{})
	res, err := diskarray.Simulate(diskarray.SimConfig{
		Disks:        10,
		Trace:        trace,
		Policy:       read,
		EpochSeconds: stats.Duration / 24,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nREAD on %d disks (%d hot / %d cold):\n", res.Disks, read.HotDisks(), res.Disks-read.HotDisks())
	fmt.Printf("  mean response: %.2f ms (p95 %.2f ms)\n", res.MeanResponse*1e3, res.P95Response*1e3)
	fmt.Printf("  energy:        %.1f kJ\n", res.EnergyJ/1e3)
	fmt.Printf("  array AFR:     %.2f%% (worst disk %d)\n", res.ArrayAFR, res.WorstDisk)
	fmt.Printf("  migrations:    %d\n", res.Migrations)

	fmt.Println("\nper-disk view:")
	for _, d := range res.PerDisk {
		fmt.Printf("  disk %2d: util %5.1f%%  %3d transitions  %.1f °C mean  AFR %5.2f%%  final %s\n",
			d.ID, d.Utilization*100, d.Transitions, d.MeanTempC, d.AFR, d.FinalSpeed)
	}
}

// Webserver: the paper's motivating scenario — a web server's diurnal,
// Zipf-skewed day with popularity churn — asking the paper's central
// question directly: how much energy does READ save versus an always-on
// array, and what does that saving cost in reliability and response time?
package main

import (
	"flag"
	"fmt"
	"log"

	diskarray "repro"
)

func main() {
	disks := flag.Int("disks", 12, "array size")
	requests := flag.Int("requests", 60000, "requests in the compressed day")
	heavy := flag.Bool("heavy", false, "use the heavy-workload intensity")
	flag.Parse()

	cfg := diskarray.DefaultGenConfig()
	cfg.NumRequests = *requests
	intensity := float64(diskarray.LightIntensity)
	if *heavy {
		intensity = diskarray.HeavyIntensity
	}
	cfg.MeanInterarrival /= intensity
	cfg.DiurnalProfile = diskarray.DefaultDiurnalProfile()
	// 12 popularity phases across the compressed day.
	duration := float64(cfg.NumRequests) * cfg.MeanInterarrival
	cfg.PhaseSeconds = duration / 12
	cfg.PhaseRotate = 0.10

	trace, err := diskarray.GenerateTrace(cfg)
	if err != nil {
		log.Fatal(err)
	}

	run := func(p diskarray.Policy) *diskarray.SimResult {
		res, err := diskarray.Simulate(diskarray.SimConfig{
			Disks:        *disks,
			Trace:        trace,
			Policy:       p,
			EpochSeconds: duration / 24,
		})
		if err != nil {
			log.Fatalf("%s: %v", p.Name(), err)
		}
		return res
	}

	always := run(diskarray.NewAlwaysOn())
	read := run(diskarray.NewREAD(diskarray.READConfig{}))

	fmt.Printf("web-server day on %d disks (intensity %.0fx)\n\n", *disks, intensity)
	fmt.Printf("%-22s %14s %14s\n", "", "always-on", "READ")
	fmt.Printf("%-22s %11.1f kJ %11.1f kJ\n", "energy", always.EnergyJ/1e3, read.EnergyJ/1e3)
	fmt.Printf("%-22s %11.2f ms %11.2f ms\n", "mean response", always.MeanResponse*1e3, read.MeanResponse*1e3)
	fmt.Printf("%-22s %12.2f %% %12.2f %%\n", "array AFR", always.ArrayAFR, read.ArrayAFR)

	saving := 100 * (always.EnergyJ - read.EnergyJ) / always.EnergyJ
	dResp := 100 * (read.MeanResponse - always.MeanResponse) / always.MeanResponse
	dAFR := 100 * (read.ArrayAFR - always.ArrayAFR) / always.ArrayAFR
	fmt.Printf("\nREAD saves %.1f%% energy at %+.1f%% response time and %+.1f%% AFR.\n",
		saving, dResp, dAFR)
	fmt.Println("\nThe paper's thesis: a scheme is only worthwhile if that last number")
	fmt.Println("stays near zero — READ caps speed transitions to keep it there.")
}

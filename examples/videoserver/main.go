// Videoserver: the paper's §6 future-work scenario — a media library of
// large files (video clips, audio segments) where striping pays off.
// Compares the plain always-on layout against RAID-0-style striping and
// shows both sides of the trade: large-file latency collapses, while the
// array performs more positioning work.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	diskarray "repro"
)

func main() {
	disks := flag.Int("disks", 8, "array size")
	width := flag.Int("width", 4, "stripe width")
	clips := flag.Int("clips", 120, "number of video clips")
	requests := flag.Int("requests", 3000, "requests to simulate")
	flag.Parse()

	// A media library: clips of 20-120 MB with mildly skewed popularity.
	rng := rand.New(rand.NewSource(7))
	var files diskarray.FileSet
	for i := 0; i < *clips; i++ {
		files = append(files, diskarray.File{
			ID:         i,
			SizeMB:     20 + rng.Float64()*100,
			AccessRate: 1 / float64(i+1),
		})
	}
	var total float64
	for _, f := range files {
		total += f.AccessRate
	}
	var reqs []diskarray.Request
	clock := 0.0
	for i := 0; i < *requests; i++ {
		clock += rng.ExpFloat64() * 2.0
		// Zipf-ish pick by cumulative rate.
		x := rng.Float64() * total
		id := 0
		for _, f := range files {
			x -= f.AccessRate
			if x <= 0 {
				id = f.ID
				break
			}
		}
		reqs = append(reqs, diskarray.Request{Arrival: clock, FileID: id})
	}
	trace := &diskarray.Trace{Files: files, Requests: reqs}

	plain, err := diskarray.Simulate(diskarray.SimConfig{
		Disks: *disks, Trace: trace, Policy: diskarray.NewAlwaysOn(),
	})
	if err != nil {
		log.Fatal(err)
	}
	striped, err := diskarray.Simulate(diskarray.SimConfig{
		Disks: *disks, Trace: trace,
		Policy: diskarray.NewStripedAlwaysOn(diskarray.StripedConfig{Width: *width}),
	})
	if err != nil {
		log.Fatal(err)
	}

	busy := func(r *diskarray.SimResult) float64 {
		var sum float64
		for _, d := range r.PerDisk {
			sum += d.BusyTime
		}
		return sum
	}

	fmt.Printf("media library: %d clips, %d requests, %d disks\n\n", *clips, *requests, *disks)
	fmt.Printf("%-24s %12s %14s\n", "", "sequential", fmt.Sprintf("striped x%d", *width))
	fmt.Printf("%-24s %9.0f ms %11.0f ms\n", "mean response", plain.MeanResponse*1e3, striped.MeanResponse*1e3)
	fmt.Printf("%-24s %9.0f ms %11.0f ms\n", "p95 response", plain.P95Response*1e3, striped.P95Response*1e3)
	fmt.Printf("%-24s %10.1f s %12.1f s\n", "total disk busy time", busy(plain), busy(striped))
	fmt.Printf("%-24s %9.1f kJ %11.1f kJ\n", "energy", plain.EnergyJ/1e3, striped.EnergyJ/1e3)

	speedup := plain.MeanResponse / striped.MeanResponse
	overhead := 100 * (busy(striped) - busy(plain)) / busy(plain)
	fmt.Printf("\nstriping cuts mean latency %.1fx at +%.1f%% positioning overhead —\n", speedup, overhead)
	fmt.Println("worth it here, and exactly why the paper skips striping for small web files.")
}

// Reliability-explorer: interrogate the PRESS model the way a storage
// administrator would — per-factor AFR contributions, the integrated
// per-disk AFR under each integrator rule, safe transition budgets, and the
// §3.4 derivation that motivates the paper's 65-transitions/day limit.
package main

import (
	"flag"
	"fmt"

	diskarray "repro"
)

func main() {
	temp := flag.Float64("temp", 50, "operating temperature °C")
	util := flag.Float64("util", 0.6, "utilization [0,1]")
	freq := flag.Float64("freq", 80, "speed transitions per day")
	flag.Parse()

	m := diskarray.NewPRESS()
	f := diskarray.Factors{TempC: *temp, Utilization: *util, TransitionsPerDay: *freq}

	fmt.Println("── factor contributions ──")
	fmt.Printf("temperature %5.1f °C   → %6.3f%% AFR\n", *temp, m.TempAFR(*temp))
	fmt.Printf("utilization %5.1f %%    → %6.3f%% AFR\n", *util*100, m.UtilAFR(*util))
	fmt.Printf("transitions %5.1f /day → +%6.3f points\n", *freq, m.FreqAFR(*freq))

	fmt.Println("\n── integrated per-disk AFR ──")
	for _, mode := range []diskarray.IntegrationMode{
		diskarray.SharedBaseline, diskarray.MaxFactor, diskarray.MeanFactor,
	} {
		mm := diskarray.NewPRESS(diskarray.WithIntegrationMode(mode))
		afr, err := mm.DiskAFR(f)
		if err != nil {
			fmt.Printf("%-16s error: %v\n", mode, err)
			continue
		}
		fmt.Printf("%-16s %6.3f%%\n", mode, afr)
	}

	fmt.Println("\n── transition budgets ──")
	q := m.FreqFunction()
	for _, budget := range []float64{0.1, 0.5, 1, 5} {
		fmt.Printf("stay under +%.1f AFR points → at most %6.1f transitions/day\n",
			budget, q.SolveBudget(budget))
	}

	fmt.Println("\n── the paper's §3.4 derivation ──")
	d := diskarray.DefaultCoffinManson().Derive()
	fmt.Printf("Arrhenius term at 50 °C:     %.4e  (paper: 3.2275e-20)\n", d.GTmax)
	fmt.Printf("material constant A·A0:      %.4e  (paper: 2.564317e26)\n", d.AA0)
	fmt.Printf("transitions to failure N'f:  %.0f      (paper: 118529)\n", d.TransitionsToFailure)
	fmt.Printf("N'f / Nf:                    %.2f        (paper: ≈2, the 50%% claim)\n", d.TransitionToCycleRatio)
	fmt.Printf("5-year daily budget:         %.1f        (paper: 65)\n", d.DailyBudget5yr)
}

# Developer entry points. CI runs the same commands; see
# .github/workflows/ci.yml.

GO ?= go

.PHONY: all build test lint fuzz bench bench-smoke

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs formatting, go vet, and the repository's own simlint suite
# (internal/analysis): determinism, map-order, checkpoint-coverage,
# atomic-write and telemetry-handle contracts. See DESIGN.md §11.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/simlint ./...

# fuzz exercises the trace and decision codecs from their committed seed
# corpora (internal/{workload,telemetry}/testdata/fuzz) for a short,
# CI-sized budget.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzTraceCodec -fuzztime=20s ./internal/workload
	$(GO) test -run='^$$' -fuzz=FuzzDecisionCodec -fuzztime=20s ./internal/telemetry

# bench regenerates both committed benchmark baselines:
#   BENCH_telemetry.json — micro-benchmark trajectory (ns/op, allocs/op,
#     custom metrics), via cmd/benchjson
#   BENCH_runs.json      — run-summary trajectory the CI regression gate
#     checks with `arrayreport check`
# Run it after a deliberate performance or metrics change and commit the
# diff; CI never regenerates these files.
#
# The guard refuses to regenerate baselines from a dirty working tree
# (changes to the BENCH_*.json files themselves are fine): a baseline must
# describe exactly one committed tree, or the numbers are unattributable.
# Override with BENCH_ALLOW_DIRTY=1 for local experiments you won't commit.
bench:
	@if [ -z "$$BENCH_ALLOW_DIRTY" ] && \
		! git diff --quiet HEAD -- . ':!BENCH_telemetry.json' ':!BENCH_runs.json'; then \
		echo "bench: working tree has uncommitted changes beyond BENCH_*.json;"; \
		echo "bench: commit them first so the baseline maps to one tree,"; \
		echo "bench: or set BENCH_ALLOW_DIRTY=1 to override."; \
		exit 1; fi
	$(GO) test -run='^$$' -bench=. -benchmem ./... \
		| $(GO) run ./cmd/benchjson -out BENCH_telemetry.json
	rm -rf .bench-runs
	$(GO) run ./cmd/experiments -fig 7 -scale 0.02 -runs-dir .bench-runs
	$(GO) run ./cmd/arrayreport baseline -store .bench-runs -command "make bench" -out BENCH_runs.json
	rm -rf .bench-runs

# bench-smoke compiles and runs every benchmark once — a fast CI-sized
# check that the benchmarks themselves still work.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

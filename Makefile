# Developer entry points. CI runs the same commands; see
# .github/workflows/ci.yml.

GO ?= go

.PHONY: all build test lint fuzz bench

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs formatting, go vet, and the repository's own simlint suite
# (internal/analysis): determinism, map-order, checkpoint-coverage,
# atomic-write and telemetry-handle contracts. See DESIGN.md §11.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/simlint ./...

# fuzz exercises the trace codec from the committed seed corpus
# (internal/workload/testdata/fuzz) for a short, CI-sized budget.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzTraceCodec -fuzztime=20s ./internal/workload

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

package diskarray

import (
	"math"
	"strings"
	"testing"
)

// The facade tests exercise the public API end to end, the way a downstream
// user would.

func TestFacadeQuickstartFlow(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.NumRequests = 5000
	trace, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(SimConfig{
		Disks:        8,
		Trace:        trace,
		Policy:       NewREAD(READConfig{}),
		EpochSeconds: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 5000 {
		t.Fatalf("served %d", res.Requests)
	}
	if res.ArrayAFR <= 0 || res.EnergyJ <= 0 || res.MeanResponse <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if len(res.PerDisk) != 8 {
		t.Fatalf("per-disk results: %d", len(res.PerDisk))
	}
}

func TestFacadePRESS(t *testing.T) {
	m := NewPRESS()
	afr, err := m.DiskAFR(Factors{TempC: 50, Utilization: 0.8, TransitionsPerDay: 100})
	if err != nil {
		t.Fatal(err)
	}
	if afr <= 0 {
		t.Fatalf("AFR = %v", afr)
	}
	arr, err := m.ArrayAFR([]Factors{
		{TempC: 40, Utilization: 0.3},
		{TempC: 50, Utilization: 0.9, TransitionsPerDay: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	if arr <= afr/2 {
		t.Fatalf("array AFR %v implausible", arr)
	}
	custom := NewPRESS(WithIntegrationMode(MaxFactor))
	if custom.Mode() != MaxFactor {
		t.Fatal("integration mode option ignored")
	}
}

func TestFacadeDerivation(t *testing.T) {
	d := DefaultCoffinManson().Derive()
	if math.Abs(d.DailyBudget5yr-65) > 2 {
		t.Fatalf("daily budget %v, want ≈65", d.DailyBudget5yr)
	}
	if d.TransitionsToFailure < 110000 || d.TransitionsToFailure > 130000 {
		t.Fatalf("N'f = %v, want ≈118529", d.TransitionsToFailure)
	}
}

func TestFacadeDiskAndThermalDefaults(t *testing.T) {
	p := DefaultDiskParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.TransferRate(Low) >= p.TransferRate(High) {
		t.Fatal("speed ordering broken")
	}
	th := DefaultThermalModel()
	if th.Steady(Low) != 40 || th.Steady(High) != 50 {
		t.Fatal("thermal operating points wrong")
	}
}

func TestFacadeAllPoliciesRun(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.NumRequests = 3000
	trace, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	policies := []Policy{
		NewREAD(READConfig{}),
		NewMAID(MAIDConfig{}),
		NewPDC(PDCConfig{}),
		NewAlwaysOn(),
		NewDRPM(DRPMConfig{}),
	}
	for _, p := range policies {
		res, err := Simulate(SimConfig{Disks: 6, Trace: trace, Policy: p, EpochSeconds: 20})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.Requests != 3000 {
			t.Fatalf("%s served %d", p.Name(), res.Requests)
		}
	}
}

func TestFacadeSweep(t *testing.T) {
	cfg := DefaultSweepConfig()
	cfg.Scale = 0.002
	cfg.DiskCounts = []int{4, 6}
	res, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 6 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	if _, err := res.ImprovementOver(MetricAFR, KindREAD, KindMAID); err != nil {
		t.Fatal(err)
	}
	if _, err := res.ImprovementOver(MetricEnergy, KindREAD, KindPDC); err != nil {
		t.Fatal(err)
	}
	if _, err := res.ImprovementOver(MetricResponse, KindREAD, KindPDC); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeIntensityConstants(t *testing.T) {
	if LightIntensity >= HeavyIntensity {
		t.Fatal("light intensity must be below heavy")
	}
}

func TestFacadeExtensions(t *testing.T) {
	// Drive profiles and seek model.
	for _, p := range []DiskParams{EnterpriseParams(), NearlineParams()} {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	sm := DefaultSeekModel()
	if !sm.Enabled() || sm.Time(sm.Cylinders-1) <= sm.Time(1) {
		t.Fatal("seek model misbehaves via facade")
	}
	// Weibull baseline.
	w := DefaultWeibull()
	afr, err := w.AFRPercent(1)
	if err != nil || afr <= 0 {
		t.Fatalf("Weibull AFR: %v, %v", afr, err)
	}
	// Cost model.
	if err := DefaultCostModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeTimelineAndStriping(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.NumRequests = 2000
	trace, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(SimConfig{
		Disks: 4, Trace: trace, Policy: NewAlwaysOn(), SampleInterval: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline samples via facade")
	}
	var sb strings.Builder
	RenderTimeline(&sb, res.Timeline, 8)
	if !strings.Contains(sb.String(), "power(W)") {
		t.Fatal("timeline render missing header")
	}
	// Striping + replication policies construct and run via the facade.
	striped, err := Simulate(SimConfig{
		Disks: 4, Trace: trace, Policy: NewStripedAlwaysOn(StripedConfig{}),
	})
	if err != nil || striped.Requests != 2000 {
		t.Fatalf("striped run: %v", err)
	}
	rep, err := Simulate(SimConfig{
		Disks: 4, Trace: trace, Policy: NewREADReplica(READReplicaConfig{}), EpochSeconds: 20,
	})
	if err != nil || rep.Requests != 2000 {
		t.Fatalf("replica run: %v", err)
	}
}

func TestFacadeCommonLog(t *testing.T) {
	log := `h - - [02/May/1998:21:30:17 +0000] "GET /a HTTP/1.0" 200 100
h - - [02/May/1998:21:30:19 +0000] "GET /b HTTP/1.0" 200 2048
`
	tr, skipped, err := ParseCommonLog(strings.NewReader(log))
	if err != nil || skipped != 0 {
		t.Fatalf("ParseCommonLog: %v, skipped %d", err, skipped)
	}
	if len(tr.Files) != 2 || len(tr.Requests) != 2 {
		t.Fatalf("converted: %d files, %d requests", len(tr.Files), len(tr.Requests))
	}
}

package diskarray_test

import (
	"fmt"

	diskarray "repro"
)

// ExampleNewPRESS evaluates the PRESS model for one disk's operating
// conditions.
func ExampleNewPRESS() {
	m := diskarray.NewPRESS()
	afr, err := m.DiskAFR(diskarray.Factors{
		TempC:             50,
		Utilization:       0.8,
		TransitionsPerDay: 65,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("temperature alone: %.1f%%\n", m.TempAFR(50))
	fmt.Printf("integrated AFR:    %.2f%%\n", afr)
	// Output:
	// temperature alone: 13.0%
	// integrated AFR:    15.43%
}

// ExampleDefaultCoffinManson reproduces the paper's §3.4 transition budget.
func ExampleDefaultCoffinManson() {
	d := diskarray.DefaultCoffinManson().Derive()
	fmt.Printf("transitions to failure: %.0fk\n", d.TransitionsToFailure/1000)
	fmt.Printf("5-year daily budget:    %.0f/day\n", d.DailyBudget5yr)
	// Output:
	// transitions to failure: 120k
	// 5-year daily budget:    65/day
}

// ExampleSimulate runs a tiny simulation end to end.
func ExampleSimulate() {
	cfg := diskarray.DefaultGenConfig()
	cfg.NumRequests = 2000
	trace, err := diskarray.GenerateTrace(cfg)
	if err != nil {
		panic(err)
	}
	res, err := diskarray.Simulate(diskarray.SimConfig{
		Disks:  6,
		Trace:  trace,
		Policy: diskarray.NewREAD(diskarray.READConfig{}),
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("served %d requests on %d disks\n", res.Requests, res.Disks)
	fmt.Printf("array AFR is the least reliable disk's: disk %d\n", res.WorstDisk)
	// Output:
	// served 2000 requests on 6 disks
	// array AFR is the least reliable disk's: disk 0
}

// ExampleCompareCost prices the title question for a synthetic pair of
// results.
func ExampleCompareCost() {
	cfg := diskarray.DefaultGenConfig()
	cfg.NumRequests = 2000
	trace, _ := diskarray.GenerateTrace(cfg)
	base, _ := diskarray.Simulate(diskarray.SimConfig{Disks: 6, Trace: trace, Policy: diskarray.NewAlwaysOn()})
	read, _ := diskarray.Simulate(diskarray.SimConfig{Disks: 6, Trace: trace, Policy: diskarray.NewREAD(diskarray.READConfig{})})
	v, err := diskarray.CompareCost(diskarray.DefaultCostModel(), read, base)
	if err != nil {
		panic(err)
	}
	fmt.Printf("energy saving positive: %v\n", v.EnergySavingPerYear > 0)
	// Output:
	// energy saving positive: true
}

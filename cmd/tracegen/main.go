// Command tracegen generates, inspects, and converts synthetic
// WorldCup98-like workload traces.
//
// Examples:
//
//	tracegen -requests 100000 -out day.trace
//	tracegen -stats -in day.trace
//	tracegen -stats                      # stats of a freshly generated trace
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/atomicio"
	"repro/internal/runstore"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	var (
		files    = flag.Int("files", 4079, "number of files (paper: 4079)")
		requests = flag.Int("requests", 1480081, "number of requests (paper: 1480081)")
		inter    = flag.Float64("interarrival", 0.0584, "mean inter-arrival seconds (paper: 0.0584)")
		alpha    = flag.Float64("alpha", 0.75, "Zipf popularity skew")
		seed     = flag.Int64("seed", 1, "generator seed")
		churn    = flag.Bool("churn", false, "enable popularity churn (12 phases/day, 10% rotation)")
		diurnal  = flag.Bool("diurnal", false, "enable the default hourly diurnal rate profile")
		out      = flag.String("out", "", "write the trace to this file")
		in       = flag.String("in", "", "read a trace from this file instead of generating")
		convert  = flag.String("convert", "", "convert a Common Log Format access log into a trace")
		stats    = flag.Bool("stats", false, "print summary statistics")
		version  = flag.Bool("version", false, "print build information and exit")
		verbose  = flag.Bool("v", false, "verbose logging (include debug lines)")
		quiet    = flag.Bool("quiet", false, "log errors only")
	)
	flag.Parse()
	logg := telemetry.NewLogger("tracegen", nil, telemetry.LevelFromFlags(*quiet, *verbose))

	if *version {
		fmt.Println(runstore.VersionLine("tracegen"))
		return
	}

	var tr *workload.Trace
	var err error
	if *convert != "" {
		f, err := os.Open(*convert)
		if err != nil {
			logg.Fatal(err)
		}
		var skipped int
		tr, skipped, err = workload.ParseCommonLog(f)
		f.Close()
		if err != nil {
			logg.Fatal(err)
		}
		if skipped > 0 {
			logg.Infof("skipped %d unparsable lines", skipped)
		}
	} else if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			logg.Fatal(err)
		}
		tr, err = workload.ReadTrace(f)
		f.Close()
		if err != nil {
			logg.Fatal(err)
		}
	} else {
		cfg := workload.GenConfig{
			NumFiles:         *files,
			NumRequests:      *requests,
			MeanInterarrival: *inter,
			ZipfAlpha:        *alpha,
			SizeMedianMB:     workload.DefaultGenConfig().SizeMedianMB,
			SizeSigma:        workload.DefaultGenConfig().SizeSigma,
			MaxSizeMB:        workload.DefaultGenConfig().MaxSizeMB,
			Seed:             *seed,
		}
		if *churn {
			cfg.PhaseSeconds = 7200
			cfg.PhaseRotate = 0.10
		}
		if *diurnal {
			cfg.DiurnalProfile = workload.DefaultDiurnalProfile()
		}
		tr, err = workload.Generate(cfg)
		if err != nil {
			logg.Fatal(err)
		}
	}

	if *stats || *out == "" {
		st, err := tr.ComputeStats()
		if err != nil {
			logg.Fatal(err)
		}
		fmt.Printf("files:              %d\n", st.Files)
		fmt.Printf("requests:           %d\n", st.Requests)
		fmt.Printf("duration:           %.1f s\n", st.Duration)
		fmt.Printf("mean inter-arrival: %.4f s\n", st.MeanInterarrival)
		fmt.Printf("requests/s:         %.2f\n", st.RequestsPerSecond)
		fmt.Printf("total volume:       %.1f MB\n", st.TotalBytesMB)
		fmt.Printf("mean file size:     %.4f MB\n", st.MeanFileSizeMB)
		fmt.Printf("skew theta:         %.3f\n", st.AccessTheta)
		fmt.Printf("top-20%% share:      %.1f%%\n", st.TopTwentyShare*100)
	}

	if *out != "" {
		f, err := atomicio.Create(*out)
		if err != nil {
			logg.Fatal(err)
		}
		if err := workload.WriteTrace(f, tr); err != nil {
			f.Abort()
			logg.Fatal(err)
		}
		if err := f.Close(); err != nil {
			logg.Fatal(err)
		}
		logg.Infof("wrote %s", *out)
	}
}

// Command arraysim runs a single disk-array simulation and prints a full
// per-disk report.
//
//	arraysim -policy read -disks 12
//	arraysim -policy maid -disks 8 -requests 100000 -intensity 6
//	arraysim -policy pdc -trace day.trace
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	diskarray "repro"
	"repro/internal/experiment"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("arraysim: ")
	var (
		policyName = flag.String("policy", "read", "policy: read | maid | pdc | always-on | drpm")
		disks      = flag.Int("disks", 10, "number of disks")
		requests   = flag.Int("requests", 50000, "synthetic trace length (ignored with -trace)")
		intensity  = flag.Float64("intensity", diskarray.LightIntensity, "arrival intensity multiplier")
		tracePath  = flag.String("trace", "", "replay a trace file instead of generating one")
		seed       = flag.Int64("seed", 1, "generator seed")
		epochs     = flag.Int("epochs", 24, "policy epochs across the trace")
		verbose    = flag.Bool("v", true, "print the per-disk table")
		timeline   = flag.Bool("timeline", false, "print a power/speed/queue timeline")
	)
	flag.Parse()

	var trace *diskarray.Trace
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := diskarray.ReadTrace(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		trace = tr
	} else {
		cfg := diskarray.DefaultGenConfig()
		cfg.NumRequests = *requests
		cfg.MeanInterarrival /= *intensity
		cfg.Seed = *seed
		cfg.DiurnalProfile = diskarray.DefaultDiurnalProfile()
		duration := float64(cfg.NumRequests) * cfg.MeanInterarrival
		cfg.PhaseSeconds = duration / 12
		cfg.PhaseRotate = 0.10
		tr, err := diskarray.GenerateTrace(cfg)
		if err != nil {
			log.Fatal(err)
		}
		trace = tr
	}
	stats, err := trace.ComputeStats()
	if err != nil {
		log.Fatal(err)
	}

	pol, err := experiment.NewPolicy(diskarray.PolicyKind(*policyName))
	if err != nil {
		log.Fatal(err)
	}

	simCfg := diskarray.SimConfig{
		Disks:        *disks,
		Trace:        trace,
		Policy:       pol,
		EpochSeconds: stats.Duration / float64(*epochs),
	}
	if *timeline {
		simCfg.SampleInterval = stats.Duration / 48
	}
	res, err := diskarray.Simulate(simCfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("policy %s on %d disks — %d requests over %.0f s\n\n",
		res.PolicyName, res.Disks, res.Requests, res.Duration)
	fmt.Printf("mean response:  %.2f ms (p95 %.2f, p99 %.2f, max %.0f ms)\n",
		res.MeanResponse*1e3, res.P95Response*1e3, res.P99Response*1e3, res.MaxResponse*1e3)
	fmt.Printf("energy:         %.1f kJ\n", res.EnergyJ/1e3)
	fmt.Printf("array AFR:      %.3f%% (worst disk %d)\n", res.ArrayAFR, res.WorstDisk)
	fmt.Printf("migrations:     %d   background ops: %d   epochs: %d\n",
		res.Migrations, res.BackgroundOps, res.Epochs)

	if *timeline {
		fmt.Println()
		diskarray.RenderTimeline(os.Stdout, res.Timeline, 24)
	}

	if *verbose {
		fmt.Printf("\n%4s %8s %6s %11s %8s %8s %9s %7s\n",
			"disk", "util%", "trans", "trans/day", "temp°C", "AFR%", "requests", "final")
		for _, d := range res.PerDisk {
			fmt.Printf("%4d %8.2f %6d %11.1f %8.1f %8.3f %9d %7s\n",
				d.ID, d.Utilization*100, d.Transitions, d.TransitionsPerDay,
				d.MeanTempC, d.AFR, d.RequestsServed, d.FinalSpeed)
		}
	}
}

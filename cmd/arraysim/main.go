// Command arraysim runs a single disk-array simulation and prints a full
// per-disk report.
//
//	arraysim -policy read -disks 12
//	arraysim -policy maid -disks 8 -requests 100000 -intensity 6
//	arraysim -policy pdc -trace day.trace
//	arraysim -policy read -faults -spares 1 -fault-accel 5e5
//	arraysim -policy read -faults -lse-rate 1.08e-4 -raid raid5 -rebuild-hours 12
//	arraysim -policy read -telemetry-dir out -trace-events -progress
//	arraysim -policy read -runs-dir runs -trace-decisions
//	arraysim -replay-decisions runs/arraysim-<digest> -override 3:skip
//	arraysim -policy read -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"sort"
	"strconv"
	"strings"
	"time"

	diskarray "repro"
	"repro/internal/atomicio"
	"repro/internal/checkpoint"
	"repro/internal/des"
	"repro/internal/experiment"
	"repro/internal/faults"
	"repro/internal/flagcheck"
	"repro/internal/opsserver"
	"repro/internal/runstore"
	"repro/internal/telemetry"
)

// checkpointName is the snapshot file inside a run directory.
const checkpointName = "checkpoint.json"

// manifestConfig is the digested configuration block of an arraysim run
// manifest: everything that determines the simulation's results. For trace
// replays the trace is identified by path only — the file's contents are not
// digested.
type manifestConfig struct {
	Policy      string         `json:"policy"`
	Disks       int            `json:"disks"`
	Requests    int            `json:"requests,omitempty"`
	Intensity   float64        `json:"intensity,omitempty"`
	Seed        int64          `json:"seed,omitempty"`
	TraceFile   string         `json:"trace_file,omitempty"`
	Epochs      int            `json:"epochs"`
	Faults      map[string]any `json:"faults,omitempty"`
	Spares      int            `json:"spares,omitempty"`
	RebuildMBps float64        `json:"rebuild_mbps,omitempty"`
	RAID        map[string]any `json:"raid,omitempty"`
}

func main() {
	var (
		policyName = flag.String("policy", "read", "policy: read | maid | pdc | always-on | drpm | read-replica | striped")
		disks      = flag.Int("disks", 10, "number of disks")
		requests   = flag.Int("requests", 50000, "synthetic trace length (ignored with -trace)")
		intensity  = flag.Float64("intensity", diskarray.LightIntensity, "arrival intensity multiplier")
		tracePath  = flag.String("trace", "", "replay a trace file instead of generating one")
		seed       = flag.Int64("seed", 1, "generator seed")
		epochs     = flag.Int("epochs", 24, "policy epochs across the trace")
		table      = flag.Bool("table", true, "print the per-disk table")
		verbose    = flag.Bool("v", false, "verbose logging (include debug lines)")
		quiet      = flag.Bool("quiet", false, "log errors only")
		timeline   = flag.Bool("timeline", false, "print a power/speed/queue timeline")

		runsDir      = flag.String("runs-dir", "", "record this run in a run store: manifest.json plus telemetry artifacts under <runs-dir>/<name>-<digest>/")
		runName      = flag.String("run-name", "arraysim", "run name inside the store (requires -runs-dir)")
		ckptEvery    = flag.Float64("checkpoint-every", 0, "write a crash-recovery snapshot (checkpoint.json in the run directory) every this many virtual seconds (requires -runs-dir)")
		resume       = flag.Bool("resume", false, "resume from the run directory's checkpoint.json instead of starting fresh (requires -runs-dir and the original -checkpoint-every)")
		version      = flag.Bool("version", false, "print build information and exit")
		telemetryDir = flag.String("telemetry-dir", "", "write per-disk NDJSON/CSV time-series and metrics.json into this directory")
		traceEvents  = flag.Bool("trace-events", false, "also record a Chrome trace_event DES trace (trace.json; requires -telemetry-dir)")
		traceSample  = flag.Int("trace-sample", 1, "record every Nth DES event in the Chrome trace")
		traceDec     = flag.Bool("trace-decisions", false, "record a structured policy decision log (decisions.ndjson) and attribution rollup (requires -telemetry-dir or -runs-dir)")
		replayDir    = flag.String("replay-decisions", "", "counterfactual replay: re-run the run recorded in this run directory (manifest.json + decisions.ndjson) and verify it reproduces, or perturb it with -override")
		overrideArg  = flag.String("override", "", "with -replay-decisions, force one recorded decision: <seq>:skip suppresses the decision and reports the energy/AFR/p99 delta")
		progress     = flag.Bool("progress", false, "log run phases and sim-time/wall-time progress to stderr")
		opsAddr      = flag.String("ops-addr", "", "serve the live ops plane (/metrics, /progress, /healthz) on this address, e.g. 127.0.0.1:9100, while the run executes")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a heap profile to this file")
		runtimeTrace = flag.String("runtime-trace", "", "write a Go runtime execution trace to this file")

		withFaults   = flag.Bool("faults", false, "inject Weibull disk failures (hazard scaled by live PRESS AFR)")
		faultSeed    = flag.Int64("fault-seed", 1, "failure-injection seed")
		faultAccel   = flag.Float64("fault-accel", 5e5, "reliability-timescale acceleration (1 = real time)")
		pressScaling = flag.Bool("press-scaling", true, "scale the failure hazard by each disk's live PRESS AFR")
		spares       = flag.Int("spares", 0, "hot-spare pool size (a failure with no spare left loses data)")
		rebuildMBps  = flag.Float64("rebuild-mbps", 0, "rebuild pacing in MB/s (0 = default 50)")

		lseRate      = flag.Float64("lse-rate", 0, "latent-sector-error rate per disk-hour (0 = LSEs off; paper-scale default is "+fmt.Sprint(faults.DefaultLSERatePerHour)+")")
		scrubHours   = flag.Float64("scrub-hours", 0, "Weibull scrub-interval scale in hours (0 = default 168; requires -lse-rate)")
		noScrub      = flag.Bool("no-scrub", false, "disable scrubbing so latent sector errors persist until repair (requires -lse-rate)")
		scrubIOMB    = flag.Float64("scrub-io-mb", 0, "I/O issued per scrub pass in MB (0 = default 256; requires -lse-rate)")
		raidLevel    = flag.String("raid", "", "RAID organization: raid5 | raid6 | repl2 | repl3 (requires -faults)")
		stripeWidth  = flag.Int("stripe-width", 0, "disks per RAID group (0 = whole array / replication default; requires -raid)")
		rebuildHours = flag.Float64("rebuild-hours", 0, "Weibull rebuild-duration scale in hours (0 = fixed -rebuild-mbps pacing; requires -faults)")
	)
	flag.Parse()
	logg := telemetry.NewLogger("arraysim", nil, telemetry.LevelFromFlags(*quiet, *verbose))

	if *version {
		fmt.Println(runstore.VersionLine("arraysim"))
		return
	}

	// Validate the flag set up front: a contradictory or impossible
	// combination should die with a usage message here, not as a cryptic
	// error from deep inside the simulation.
	usageErr := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "arraysim: %s\n\n", fmt.Sprintf(format, args...))
		flag.Usage()
		os.Exit(2)
	}
	explicit := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	switch {
	case flag.NArg() > 0:
		usageErr("unexpected positional arguments %q", flag.Args())
	case *tracePath != "" && (explicit["requests"] || explicit["intensity"] || explicit["seed"]):
		usageErr("-trace replays a file; -requests/-intensity/-seed only apply to generated traces")
	case *disks < 2:
		usageErr("-disks %d: an array needs at least 2 disks", *disks)
	case *epochs <= 0:
		usageErr("-epochs %d must be positive", *epochs)
	case *tracePath == "" && *requests <= 0:
		usageErr("-requests %d must be positive", *requests)
	case *tracePath == "" && *intensity <= 0:
		usageErr("-intensity %g must be positive", *intensity)
	case *spares < 0:
		usageErr("-spares %d cannot be negative", *spares)
	case *rebuildMBps < 0:
		usageErr("-rebuild-mbps %g cannot be negative", *rebuildMBps)
	case *faultAccel <= 0:
		usageErr("-fault-accel %g must be positive", *faultAccel)
	case !*withFaults && (explicit["fault-seed"] || explicit["fault-accel"] || explicit["press-scaling"] || explicit["spares"] || explicit["rebuild-mbps"]):
		usageErr("fault flags require -faults")
	case !*withFaults && (explicit["lse-rate"] || explicit["raid"] || explicit["rebuild-hours"]):
		usageErr("-lse-rate/-raid/-rebuild-hours require -faults")
	case *lseRate < 0:
		usageErr("-lse-rate %g cannot be negative", *lseRate)
	case *lseRate == 0 && (explicit["scrub-hours"] || explicit["no-scrub"] || explicit["scrub-io-mb"]):
		usageErr("scrub flags require -lse-rate (scrubbing exists to clear latent sector errors)")
	case explicit["scrub-hours"] && *scrubHours <= 0:
		usageErr("-scrub-hours %g must be positive", *scrubHours)
	case explicit["scrub-hours"] && *noScrub:
		usageErr("-scrub-hours and -no-scrub contradict each other")
	case *scrubIOMB < 0:
		usageErr("-scrub-io-mb %g cannot be negative", *scrubIOMB)
	case *rebuildHours < 0:
		usageErr("-rebuild-hours %g cannot be negative", *rebuildHours)
	case *raidLevel == "" && explicit["stripe-width"]:
		usageErr("-stripe-width requires -raid")
	}
	if err := flagcheck.Choice("policy", *policyName, flagcheck.Strings(experiment.AllPolicyKinds())...); err != nil {
		usageErr("%v", err)
	}
	if *raidLevel != "" {
		if err := flagcheck.Choice("raid", *raidLevel, flagcheck.Strings(diskarray.RAIDLevels())...); err != nil {
			usageErr("%v", err)
		}
		rc := diskarray.RAIDConfig{Level: diskarray.RAIDLevel(*raidLevel), StripeWidth: *stripeWidth}
		if err := rc.Validate(*disks); err != nil {
			usageErr("%v", err)
		}
	}
	if *replayDir != "" {
		// Replay reconstructs the whole configuration from the recorded
		// manifest; any flag that would change it contradicts the point.
		allowed := map[string]bool{
			"replay-decisions": true, "override": true,
			"checkpoint-every": true, "table": true, "progress": true,
			"v": true, "quiet": true, "ops-addr": true,
		}
		var clash []string
		for name := range explicit {
			if !allowed[name] {
				clash = append(clash, name)
			}
		}
		sort.Strings(clash)
		if len(clash) > 0 {
			usageErr("-replay-decisions derives the run configuration from the recorded manifest; drop -%s", strings.Join(clash, ", -"))
		}
		if err := runReplay(*replayDir, *overrideArg, *ckptEvery); err != nil {
			logg.Fatal(err)
		}
		return
	}
	switch {
	case *runsDir == "" && explicit["run-name"]:
		usageErr("-run-name requires -runs-dir")
	case *ckptEvery < 0:
		usageErr("-checkpoint-every %g cannot be negative", *ckptEvery)
	case *ckptEvery > 0 && *runsDir == "":
		usageErr("-checkpoint-every requires -runs-dir (the snapshot lives in the run directory)")
	case *resume && *runsDir == "":
		usageErr("-resume requires -runs-dir")
	case *resume && *ckptEvery <= 0:
		usageErr("-resume requires the original -checkpoint-every interval (the resumed run must keep the same snapshot cadence to stay bit-identical)")
	case *runsDir != "" && *runName == "":
		usageErr("-run-name must not be empty")
	case *runsDir == "" && *telemetryDir == "" && (*traceEvents || explicit["trace-sample"]):
		usageErr("-trace-events/-trace-sample require -telemetry-dir or -runs-dir")
	case *runsDir == "" && *telemetryDir == "" && *traceDec:
		usageErr("-trace-decisions requires -telemetry-dir or -runs-dir (the decision log is written as decisions.ndjson)")
	case *overrideArg != "" && *replayDir == "":
		usageErr("-override requires -replay-decisions")
	case *traceSample < 1:
		usageErr("-trace-sample %d must be at least 1", *traceSample)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile) //simlint:allow atomicwrite -- pprof streams into a live file; a torn profile from a crashed run is acceptable debug output
		if err != nil {
			logg.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			logg.Fatal(err)
		}
		defer func() { pprof.StopCPUProfile(); f.Close() }()
	}
	if *runtimeTrace != "" {
		f, err := os.Create(*runtimeTrace) //simlint:allow atomicwrite -- runtime/trace streams into a live file; a torn trace from a crashed run is acceptable debug output
		if err != nil {
			logg.Fatal(err)
		}
		if err := rtrace.Start(f); err != nil {
			logg.Fatal(err)
		}
		defer func() { rtrace.Stop(); f.Close() }()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := atomicio.Create(*memprofile)
		if err != nil {
			logg.Fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Abort()
			logg.Fatal(err)
		}
		if err := f.Close(); err != nil {
			logg.Fatal(err)
		}
	}()

	var faultCfg *faults.Config
	if *withFaults {
		fc := faults.Default()
		fc.Seed = *faultSeed
		fc.Acceleration = *faultAccel
		fc.PRESSScaling = *pressScaling
		fc.LSERatePerHour = *lseRate
		fc.NoScrub = *noScrub
		fc.ScrubIOMB = *scrubIOMB
		if *scrubHours > 0 {
			w := faults.DefaultScrub()
			w.ScaleHours = *scrubHours
			fc.Scrub = &w
		}
		if *rebuildHours > 0 {
			fc.RebuildTime = &diskarray.Weibull{Shape: 1, ScaleHours: *rebuildHours}
		}
		faultCfg = &fc
	}

	// With -runs-dir the run records itself: the config digest names the run
	// directory, and telemetry (unless routed elsewhere explicitly) lands
	// next to the manifest so the artifacts travel with the run.
	var (
		store    *runstore.Store
		manifest *runstore.Manifest
		runDir   string
	)
	start := time.Now()
	if *runsDir != "" {
		mc := manifestConfig{
			Policy: *policyName,
			Disks:  *disks,
			Epochs: *epochs,
		}
		if *tracePath != "" {
			mc.TraceFile = *tracePath
		} else {
			mc.Requests = *requests
			mc.Intensity = *intensity
			mc.Seed = *seed
		}
		if faultCfg != nil {
			fcm, err := runstore.ToJSONMap(*faultCfg)
			if err != nil {
				logg.Fatal(err)
			}
			mc.Faults = fcm
			mc.Spares = *spares
			mc.RebuildMBps = *rebuildMBps
			if *raidLevel != "" {
				rcm, err := runstore.ToJSONMap(diskarray.RAIDConfig{
					Level: diskarray.RAIDLevel(*raidLevel), StripeWidth: *stripeWidth,
				})
				if err != nil {
					logg.Fatal(err)
				}
				mc.RAID = rcm
			}
		}
		var err error
		manifest, err = runstore.New("arraysim", *runName, mc)
		if err != nil {
			logg.Fatal(err)
		}
		store, err = runstore.Open(*runsDir)
		if err != nil {
			logg.Fatal(err)
		}
		runDir, err = store.RunDir(manifest)
		if err != nil {
			logg.Fatal(err)
		}
		if *telemetryDir == "" {
			*telemetryDir = runDir
		}
	}

	var rec *telemetry.Recorder
	if *telemetryDir != "" {
		var err error
		rec, err = telemetry.Open(telemetry.Config{
			Dir:              *telemetryDir,
			TraceEvents:      *traceEvents,
			TraceSampleEvery: *traceSample,
			TraceDecisions:   *traceDec,
		})
		if err != nil {
			logg.Fatal(err)
		}
	}
	var prog *telemetry.Progress
	if *progress {
		prog = telemetry.NewProgress(logg, 2*time.Second)
		if rec == nil {
			rec = &telemetry.Recorder{}
		}
		rec.Progress = prog
	}

	// The live ops plane: a read-only HTTP server over lock-free snapshots.
	// Attaching Live/Watch is observation-only — the run is bit-identical
	// with or without -ops-addr.
	var (
		srv   *opsserver.Server
		watch *des.Watch
	)
	if *opsAddr != "" {
		live := telemetry.NewLive()
		watch = des.NewWatch()
		if rec == nil {
			rec = &telemetry.Recorder{}
		}
		rec.Live = live
		var err error
		srv, err = opsserver.Start(opsserver.Options{
			Addr:  *opsAddr,
			Tool:  "arraysim",
			Run:   *runName,
			Live:  live,
			Watch: watch,
			Log:   logg,
		})
		if err != nil {
			logg.Fatal(err)
		}
		defer srv.Close()
	}

	perfCap := runstore.StartPerf()
	prog.Phase("load-trace")
	trace, err := buildTrace(*tracePath, *requests, *intensity, *seed)
	if err != nil {
		logg.Fatal(err)
	}
	stats, err := trace.ComputeStats()
	if err != nil {
		logg.Fatal(err)
	}

	pol, err := experiment.NewPolicy(diskarray.PolicyKind(*policyName))
	if err != nil {
		logg.Fatal(err)
	}

	simCfg := diskarray.SimConfig{
		Disks:        *disks,
		Trace:        trace,
		Policy:       pol,
		EpochSeconds: stats.Duration / float64(*epochs),
	}
	if faultCfg != nil {
		simCfg.Faults = faultCfg
		simCfg.Spares = *spares
		simCfg.RebuildMBps = *rebuildMBps
		if *raidLevel != "" {
			simCfg.RAID = diskarray.RAIDConfig{
				Level: diskarray.RAIDLevel(*raidLevel), StripeWidth: *stripeWidth,
			}
		}
	}
	if *timeline {
		simCfg.SampleInterval = stats.Duration / 48
	}
	simCfg.Telemetry = rec
	simCfg.Watch = watch
	if *ckptEvery > 0 {
		simCfg.Checkpoint = &diskarray.CheckpointSpec{
			EverySimSeconds: *ckptEvery,
			Path:            filepath.Join(runDir, checkpointName),
			Tool:            "arraysim",
			ConfigDigest:    manifest.ConfigDigest,
		}
	}
	var res *diskarray.SimResult
	if *resume {
		ckptPath := filepath.Join(runDir, checkpointName)
		env, err := checkpoint.Read(ckptPath)
		if err != nil {
			rec.Close()
			logg.Fatalf("resume: %v", err)
		}
		if env.Tool != "arraysim" {
			rec.Close()
			logg.Fatalf("resume: %s was written by %q, not arraysim", ckptPath, env.Tool)
		}
		if env.ConfigDigest != manifest.ConfigDigest {
			rec.Close()
			logg.Fatalf("resume: %s was taken under config digest %s, current flags digest to %s — rerun with the original flags",
				ckptPath, env.ConfigDigest, manifest.ConfigDigest)
		}
		prog.Phase("resume")
		logg.Infof("resuming from %s (t=%.1f s, %d events fired)", ckptPath, env.SimTime, env.EventsFired)
		res, err = diskarray.ResumeSimulation(simCfg, env.State)
		if err != nil {
			rec.Close()
			logg.Fatal(err)
		}
	} else {
		prog.Phase("simulate")
		var err error
		res, err = diskarray.Simulate(simCfg)
		if err != nil {
			rec.Close()
			logg.Fatal(err)
		}
	}
	prog.Done("simulate", res.Duration, res.EventsFired)
	perf := perfCap.Sample(res.Duration, res.EventsFired, false)
	if srv != nil {
		srv.MarkDone()
	}
	if err := rec.Close(); err != nil {
		logg.Fatal(err)
	}
	if rec.Dir() != "" {
		logg.Infof("telemetry written to %s", rec.Dir())
	}
	if store != nil {
		manifest.Seed = *seed
		manifest.Policy = res.PolicyName
		if *tracePath != "" {
			manifest.Workload = "trace " + *tracePath
		} else {
			manifest.Workload = fmt.Sprintf("synthetic %d requests, intensity %g", *requests, *intensity)
		}
		manifest.Summary = runstore.SummaryFromResult(res, *withFaults)
		manifest.Attribution = res.Attribution
		manifest.Perf = &runstore.Perf{Run: &perf}
		manifest.CreatedAt = start.UTC().Format(time.RFC3339)
		manifest.WallSeconds = time.Since(start).Seconds()
		dir, err := store.Write(manifest)
		if err != nil {
			logg.Fatal(err)
		}
		logg.Infof("run recorded in %s", dir)
	}

	fmt.Printf("policy %s on %d disks — %d requests over %.0f s\n\n",
		res.PolicyName, res.Disks, res.Requests, res.Duration)
	fmt.Printf("mean response:  %.2f ms (p95 %.2f, p99 %.2f, max %.0f ms)\n",
		res.MeanResponse*1e3, res.P95Response*1e3, res.P99Response*1e3, res.MaxResponse*1e3)
	fmt.Printf("energy:         %.1f kJ\n", res.EnergyJ/1e3)
	fmt.Printf("array AFR:      %.3f%% (worst disk %d)\n", res.ArrayAFR, res.WorstDisk)
	fmt.Printf("migrations:     %d   background ops: %d   epochs: %d\n",
		res.Migrations, res.BackgroundOps, res.Epochs)

	if *withFaults {
		fmt.Printf("\nfailures:       %d (%d on spares, %d data-loss)   repairs: %d\n",
			res.DiskFailures, res.SparesUsed, res.DataLossEvents, res.DiskRepairs)
		fmt.Printf("requests:       %d lost, %d degraded   files re-homed: %d\n",
			res.LostRequests, res.DegradedRequests, res.ReassignedFiles)
		fmt.Printf("rebuild:        %.0f MB, %.1f kJ\n", res.RebuildMB, res.RebuildEnergyJ/1e3)
		if res.MTTDLHours > 0 {
			fmt.Printf("MTTDL:          %.2f h (first data loss, virtual time)\n", res.MTTDLHours)
		}
		if res.LSEModeled {
			fmt.Printf("latent errors:  %d developed, %d scrubbed away, %d pending at end (%d scrub passes, %.0f MB)\n",
				res.LSEErrors, res.LSECleared, res.LSEPending, res.Scrubs, res.ScrubMB)
		}
		if res.RAIDLevel != "" {
			fmt.Printf("RAID:           %s × %d groups — %d data-loss combinations (%d via latent error during rebuild, %d overlapping failures)\n",
				res.RAIDLevel, res.RAIDGroups, res.RAIDDataLossEvents, res.RAIDLSELosses, res.RAIDOverlapLosses)
			if res.MTTDLEstHours > 0 {
				fmt.Printf("MTTDL estimate: %.3g h over %.3g h of accelerated exposure\n",
					res.MTTDLEstHours, res.ExposureHours)
			} else {
				fmt.Printf("MTTDL estimate: no loss observed over %.3g h of accelerated exposure\n",
					res.ExposureHours)
			}
		}
		for _, ev := range res.FailureLog {
			tag := "spare"
			if ev.DataLoss {
				tag = "DATA LOSS"
			}
			fmt.Printf("  t=%9.1f s  disk %2d failed (%s)\n", ev.Time, ev.Disk, tag)
		}
		for _, ev := range res.RAIDLossLog {
			fmt.Printf("  t=%9.1f s  RAID group %d lost data (%s, disk %d)\n",
				ev.Time, ev.Group, ev.Kind, ev.Disk)
		}
	}

	if *timeline {
		fmt.Println()
		diskarray.RenderTimeline(os.Stdout, res.Timeline, 24)
	}

	if *table {
		fmt.Printf("\n%4s %8s %6s %11s %8s %8s %9s %7s\n",
			"disk", "util%", "trans", "trans/day", "temp°C", "AFR%", "requests", "final")
		for _, d := range res.PerDisk {
			fmt.Printf("%4d %8.2f %6d %11.1f %8.1f %8.3f %9d %7s\n",
				d.ID, d.Utilization*100, d.Transitions, d.TransitionsPerDay,
				d.MeanTempC, d.AFR, d.RequestsServed, d.FinalSpeed)
		}
	}
}

// buildTrace loads a trace file or generates the synthetic workload, exactly
// as the recorded run did — replay reuses it so both runs see the same
// requests.
func buildTrace(tracePath string, requests int, intensity float64, seed int64) (*diskarray.Trace, error) {
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return diskarray.ReadTrace(f)
	}
	cfg := diskarray.DefaultGenConfig()
	cfg.NumRequests = requests
	cfg.MeanInterarrival /= intensity
	cfg.Seed = seed
	cfg.DiurnalProfile = diskarray.DefaultDiurnalProfile()
	duration := float64(cfg.NumRequests) * cfg.MeanInterarrival
	cfg.PhaseSeconds = duration / 12
	cfg.PhaseRotate = 0.10
	return diskarray.GenerateTrace(cfg)
}

// runReplay is the -replay-decisions mode: rebuild the recorded run's
// configuration from its manifest, re-run it with a fresh decision log, and
// either verify the decision stream and headline metrics reproduce
// bit-identically (no -override) or force one decision and report the
// energy/AFR/p99 cost of that single choice. Replay never writes into the
// run directory.
func runReplay(runDir, override string, ckptEvery float64) error {
	m, err := runstore.ReadManifest(runDir)
	if err != nil {
		return err
	}
	if m.Tool != "arraysim" {
		return fmt.Errorf("replay: %s was recorded by %q; only single arraysim runs can be replayed", runDir, m.Tool)
	}
	var mc manifestConfig
	if err := json.Unmarshal(m.Config, &mc); err != nil {
		return fmt.Errorf("replay: decode manifest config: %w", err)
	}
	basePath := filepath.Join(runDir, "decisions.ndjson")
	baseBytes, err := os.ReadFile(basePath)
	if err != nil {
		return fmt.Errorf("replay: %s has no decision log — record the run with -trace-decisions first: %w", runDir, err)
	}
	baseLog, err := telemetry.ReadDecisionNDJSON(bytes.NewReader(baseBytes))
	if err != nil {
		return fmt.Errorf("replay: %s: %w", basePath, err)
	}

	trace, err := buildTrace(mc.TraceFile, mc.Requests, mc.Intensity, mc.Seed)
	if err != nil {
		return err
	}
	stats, err := trace.ComputeStats()
	if err != nil {
		return err
	}
	pol, err := experiment.NewPolicy(diskarray.PolicyKind(mc.Policy))
	if err != nil {
		return err
	}
	dlog := telemetry.NewDecisionLog()
	cfg := diskarray.SimConfig{
		Disks:        mc.Disks,
		Trace:        trace,
		Policy:       pol,
		EpochSeconds: stats.Duration / float64(mc.Epochs),
		Telemetry:    &telemetry.Recorder{Decisions: dlog},
	}
	faultsOn := false
	if mc.Faults != nil {
		var fc faults.Config
		if err := remarshal(mc.Faults, &fc); err != nil {
			return fmt.Errorf("replay: decode fault config: %w", err)
		}
		cfg.Faults = &fc
		cfg.Spares = mc.Spares
		cfg.RebuildMBps = mc.RebuildMBps
		faultsOn = true
		if mc.RAID != nil {
			var rc diskarray.RAIDConfig
			if err := remarshal(mc.RAID, &rc); err != nil {
				return fmt.Errorf("replay: decode RAID config: %w", err)
			}
			cfg.RAID = rc
		}
	}
	if ckptEvery > 0 {
		// The recorded run's checkpoint ticks are DES events; replaying with
		// the same cadence (into a discarding sink) keeps the event streams —
		// and therefore events_fired — aligned.
		cfg.Checkpoint = &diskarray.CheckpointSpec{
			EverySimSeconds: ckptEvery,
			Tool:            "arraysim",
			ConfigDigest:    m.ConfigDigest,
			Sink:            func([]byte) error { return nil },
		}
	}

	var forcedSeq uint64
	if override != "" {
		seqStr, action, ok := strings.Cut(override, ":")
		if !ok {
			return fmt.Errorf("replay: -override %q is not <seq>:<action>", override)
		}
		seq, err := strconv.ParseUint(seqStr, 10, 64)
		if err != nil || seq == 0 {
			return fmt.Errorf("replay: -override sequence %q is not a positive integer", seqStr)
		}
		if action != "skip" {
			return fmt.Errorf("replay: -override action %q not supported (only: skip)", action)
		}
		if int(seq) > baseLog.Len() {
			return fmt.Errorf("replay: decision %d out of range; the recorded log has %d decisions", seq, baseLog.Len())
		}
		base := baseLog.Records()[seq-1]
		if base.Kind == telemetry.DecisionSpinUp || base.Kind == telemetry.DecisionRebuildPace {
			return fmt.Errorf("replay: decision %d is a %s, which cannot be skipped (queued work must eventually be served)", seq, base.Kind)
		}
		cfg.DecisionOverrides = map[uint64]string{seq: action}
		forcedSeq = seq
	}

	res, err := diskarray.Simulate(cfg)
	if err != nil {
		return err
	}
	sum := runstore.SummaryFromResult(res, faultsOn)

	if forcedSeq == 0 {
		var buf bytes.Buffer
		if err := dlog.WriteNDJSON(&buf); err != nil {
			return err
		}
		logOK := bytes.Equal(buf.Bytes(), baseBytes)
		sumOK := sum.EventsFired == m.Summary.EventsFired &&
			sum.EnergyJ == m.Summary.EnergyJ &&
			sum.P99ResponseS == m.Summary.P99ResponseS
		if !logOK || !sumOK {
			fmt.Printf("replay DIVERGED from %s\n", runDir)
			if !logOK {
				fmt.Printf("  decision log: %d recorded vs %d replayed decisions (or differing records)\n",
					baseLog.Len(), dlog.Len())
			}
			if !sumOK {
				fmt.Printf("  events fired: %.0f vs %.0f\n", m.Summary.EventsFired, sum.EventsFired)
				fmt.Printf("  energy (J):   %v vs %v\n", m.Summary.EnergyJ, sum.EnergyJ)
				fmt.Printf("  p99 (s):      %v vs %v\n", m.Summary.P99ResponseS, sum.P99ResponseS)
			}
			fmt.Println("likely causes: different binary, a moved trace file, or a run recorded with -checkpoint-every replayed without it")
			os.Exit(1)
		}
		fmt.Printf("replay of %s reproduces the baseline bit-identically\n", runDir)
		fmt.Printf("  %d decisions, %.0f events, %.1f kJ, p99 %.2f ms\n",
			dlog.Len(), sum.EventsFired, sum.EnergyJ/1e3, sum.P99ResponseS*1e3)
		return nil
	}

	base := baseLog.Records()[forcedSeq-1]
	fmt.Printf("counterfactual: decision %d (%s disk %d at t=%.1f s, cause %q) forced to skip\n",
		forcedSeq, base.Kind, base.Disk, base.T, base.Cause)
	fmt.Printf("  baseline:  %.3f kJ, AFR %.4f%%, p99 %.3f ms\n",
		m.Summary.EnergyJ/1e3, m.Summary.ArrayAFRPct, m.Summary.P99ResponseS*1e3)
	fmt.Printf("  replayed:  %.3f kJ, AFR %.4f%%, p99 %.3f ms\n",
		sum.EnergyJ/1e3, sum.ArrayAFRPct, sum.P99ResponseS*1e3)
	fmt.Printf("  delta:     %+.3f kJ, %+.5f%% AFR, %+.3f ms p99  (%d vs %d decisions)\n",
		(sum.EnergyJ-m.Summary.EnergyJ)/1e3,
		sum.ArrayAFRPct-m.Summary.ArrayAFRPct,
		(sum.P99ResponseS-m.Summary.P99ResponseS)*1e3,
		dlog.Len(), baseLog.Len())
	return nil
}

// remarshal converts a decoded JSON map back into a typed config struct.
func remarshal(src map[string]any, dst any) error {
	raw, err := json.Marshal(src)
	if err != nil {
		return err
	}
	return json.Unmarshal(raw, dst)
}

// Command benchjson converts `go test -bench` output into the committed
// BENCH_telemetry.json baseline format.
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -out BENCH_telemetry.json
//
// The parser understands the standard benchmark line grammar — iterations,
// ns/op, B/op, allocs/op — and records every other `value unit` pair (emitted
// with testing.B.ReportMetric) under the benchmark's metrics map. Package
// attribution comes from the `pkg:` header go test prints per package; the
// goos/goarch/cpu headers of the first package stamp the file.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"

	"repro/internal/atomicio"
	"repro/internal/telemetry"
)

// benchFile mirrors the committed BENCH_telemetry.json schema.
type benchFile struct {
	Generated  string      `json:"generated"`
	Command    string      `json:"command"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPU        string      `json:"cpu"`
	Benchmarks []benchLine `json:"benchmarks"`
}

type benchLine struct {
	Package     string             `json:"package"`
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// gomaxprocsSuffix is the trailing -N go test appends to benchmark names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	var (
		out     = flag.String("out", "", "write the JSON baseline to this file (default stdout)")
		command = flag.String("command", "go test -run '^$' -bench . -benchmem ./...", "regeneration command recorded in the file")
		verbose = flag.Bool("v", false, "verbose logging (include debug lines)")
		quiet   = flag.Bool("quiet", false, "log errors only")
	)
	flag.Parse()
	logg := telemetry.NewLogger("benchjson", nil, telemetry.LevelFromFlags(*quiet, *verbose))
	if flag.NArg() > 0 {
		logg.Fatalf("unexpected positional arguments %q (benchmark output is read from stdin)", flag.Args())
	}

	bf, err := parse(bufio.NewScanner(os.Stdin), *command)
	if err != nil {
		logg.Fatal(err)
	}
	if len(bf.Benchmarks) == 0 {
		logg.Fatal("no benchmark lines on stdin — pipe `go test -bench . -benchmem` output in")
	}

	raw, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		logg.Fatal(err)
	}
	raw = append(raw, '\n')
	if *out == "" {
		os.Stdout.Write(raw)
		return
	}
	f, err := atomicio.Create(*out)
	if err != nil {
		logg.Fatal(err)
	}
	if _, err := f.Write(raw); err != nil {
		f.Abort()
		logg.Fatal(err)
	}
	if err := f.Close(); err != nil {
		logg.Fatal(err)
	}
	logg.Infof("wrote %d benchmarks to %s", len(bf.Benchmarks), *out)
}

// parse consumes go test output line by line. Benchmark result lines start
// with "Benchmark" and carry tab-separated fields; everything else (PASS,
// ok, compile noise) is ignored except the per-package headers.
func parse(sc *bufio.Scanner, command string) (*benchFile, error) {
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	bf := &benchFile{
		Generated: time.Now().UTC().Format("2006-01-02"),
		Command:   command,
	}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			if bf.GOOS == "" {
				bf.GOOS = strings.TrimPrefix(line, "goos: ")
			}
		case strings.HasPrefix(line, "goarch: "):
			if bf.GOARCH == "" {
				bf.GOARCH = strings.TrimPrefix(line, "goarch: ")
			}
		case strings.HasPrefix(line, "cpu: "):
			if bf.CPU == "" {
				bf.CPU = strings.TrimPrefix(line, "cpu: ")
			}
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBenchLine(line, pkg)
			if err != nil {
				return nil, err
			}
			if b != nil {
				bf.Benchmarks = append(bf.Benchmarks, *b)
			}
		}
	}
	return bf, sc.Err()
}

// parseBenchLine decodes one result line, e.g.
//
//	BenchmarkHotLoop-8  150  7.71 ns/op  0 B/op  0 allocs/op  13.0 afr_pct
//
// Returns (nil, nil) for benchmark status lines that carry no measurements.
func parseBenchLine(line, pkg string) (*benchLine, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return nil, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, nil // "BenchmarkFoo    --- SKIP" and friends
	}
	b := &benchLine{
		Package:    pkg,
		Name:       gomaxprocsSuffix.ReplaceAllString(fields[0], ""),
		Iterations: iters,
	}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("benchmark line %q: bad value %q", line, fields[i])
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = int64(val)
		case "MB/s":
			// throughput is derivable from ns/op; skip to keep the schema lean
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = val
		}
	}
	return b, nil
}

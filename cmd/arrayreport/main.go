// Command arrayreport works with recorded run directories: listing and
// inspecting manifests, diffing two runs metric-by-metric, gating fresh runs
// against the committed baseline (BENCH_runs.json), regenerating that
// baseline, and rendering a self-contained HTML report.
//
//	arrayreport list -store runs
//	arrayreport show -store runs fig7-light
//	arrayreport diff runs-a/fig7-light-0123456789ab runs-b/fig7-light-0123456789ab
//	arrayreport diff -store runs -tol 0.01 fig7-light fig7-heavy
//	arrayreport check -baseline BENCH_runs.json -store runs
//	arrayreport baseline -store runs -out BENCH_runs.json
//	arrayreport html -store runs -out report.html
//	arrayreport perf -store runs
//	arrayreport perf -store runs fig7-light
//
// diff and check exit 1 when any metric is out of tolerance, so both work as
// CI regression gates; the default diff tolerance is 0 (exact equality),
// which makes a same-seed diff a bit-identical-determinism check.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/atomicio"
	"repro/internal/runstore"
	"repro/internal/telemetry"
)

// logg is the shared leveled logger; main rebinds it from the global flags
// before dispatching to a subcommand.
var logg = telemetry.NewLogger("arrayreport", nil, telemetry.LogInfo)

func main() {
	version := flag.Bool("version", false, "print build information and exit")
	verbose := flag.Bool("v", false, "verbose logging (include debug lines)")
	quiet := flag.Bool("quiet", false, "log errors only")
	flag.Usage = usage
	flag.Parse()
	logg = telemetry.NewLogger("arrayreport", nil, telemetry.LevelFromFlags(*quiet, *verbose))
	if *version {
		fmt.Println(runstore.VersionLine("arrayreport"))
		return
	}
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	cmd, args := flag.Arg(0), flag.Args()[1:]
	var err error
	switch cmd {
	case "list":
		err = cmdList(args)
	case "show":
		err = cmdShow(args)
	case "diff":
		err = cmdDiff(args)
	case "check":
		err = cmdCheck(args)
	case "baseline":
		err = cmdBaseline(args)
	case "html":
		err = cmdHTML(args)
	case "perf":
		err = cmdPerf(args)
	default:
		fmt.Fprintf(os.Stderr, "arrayreport: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		logg.Fatal(err)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: arrayreport [-version] [-v] [-quiet] <command> [flags] [args]

commands:
  list      list the runs in a store
  show      print one run's manifest and metrics
  diff      compare two runs metric-by-metric (exit 1 on breach)
  check     gate runs against a committed baseline file (exit 1 on breach)
  baseline  regenerate a baseline file from a store's runs
  html      render a self-contained HTML report of a store
  perf      show self-performance accounting (wall, events/s, allocs, GC)

run 'arrayreport <command> -h' for the flags of one command.
`)
}

// resolveRun loads one run from a positional ref: a path to a run directory
// (or its manifest.json) if it exists on disk, otherwise a store lookup by
// run ID, name, or digest prefix.
func resolveRun(storeDir, ref string) (*runstore.Manifest, error) {
	if _, err := os.Stat(ref); err == nil {
		return runstore.ReadManifest(ref)
	}
	if storeDir == "" {
		return nil, fmt.Errorf("%q is not a run directory and no -store was given", ref)
	}
	st, err := runstore.Open(storeDir)
	if err != nil {
		return nil, err
	}
	return st.Load(ref)
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	storeDir := fs.String("store", "runs", "run store directory")
	fs.Parse(args)
	st, err := runstore.Open(*storeDir)
	if err != nil {
		return err
	}
	runs, warnings, err := st.ListChecked()
	if err != nil {
		return err
	}
	for _, w := range warnings {
		fmt.Fprintf(os.Stderr, "arrayreport: warning: %s\n", w)
	}
	if len(runs) == 0 {
		fmt.Printf("no runs in %s\n", st.Root())
		return nil
	}
	fmt.Printf("%-28s %-12s %-14s %-8s %10s %9s %9s  %s\n",
		"run", "tool", "policy", "status", "energy_kj", "afr_pct", "mean_ms", "created")
	for _, m := range runs {
		status := m.Status
		if status == "" {
			status = "ok"
		}
		fmt.Printf("%-28s %-12s %-14s %-8s %10.1f %9.3f %9.2f  %s\n",
			m.ID(), m.Tool, m.Policy, status,
			m.Summary.EnergyJ/1e3, m.Summary.ArrayAFRPct, m.Summary.MeanResponseS*1e3,
			m.CreatedAt)
	}
	return nil
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	storeDir := fs.String("store", "runs", "run store directory")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("show needs exactly one run ref, got %d", fs.NArg())
	}
	m, err := resolveRun(*storeDir, fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("run:       %s\n", m.ID())
	fmt.Printf("tool:      %s\n", m.Tool)
	if m.Policy != "" {
		fmt.Printf("policy:    %s\n", m.Policy)
	}
	if m.Workload != "" {
		fmt.Printf("workload:  %s\n", m.Workload)
	}
	fmt.Printf("seed:      %d\n", m.Seed)
	fmt.Printf("digest:    %s\n", m.ConfigDigest)
	fmt.Printf("build:     %s\n", m.Build)
	if m.CreatedAt != "" {
		fmt.Printf("created:   %s (%.2f s wall)\n", m.CreatedAt, m.WallSeconds)
	}
	if len(m.Artifacts) > 0 {
		fmt.Printf("artifacts: %s\n", strings.Join(m.Artifacts, ", "))
	}
	fmt.Println("\nmetrics:")
	metrics := m.Summary.Metrics()
	names := make([]string, 0, len(metrics))
	for k := range metrics {
		names = append(names, k)
	}
	// Fixed metrics first, cell metrics after; both alphabetical.
	sortMetricNames(names)
	for _, k := range names {
		fmt.Printf("  %-34s %16.9g\n", k, metrics[k])
	}
	return nil
}

func sortMetricNames(names []string) {
	sort.Slice(names, func(i, j int) bool {
		ci := strings.HasPrefix(names[i], "cell.")
		cj := strings.HasPrefix(names[j], "cell.")
		if ci != cj {
			return !ci
		}
		return names[i] < names[j]
	})
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	storeDir := fs.String("store", "", "run store to resolve non-path refs in")
	tol := fs.Float64("tol", 0, "default relative tolerance (0 = exact equality)")
	all := fs.Bool("all", false, "print every metric, not only breaches")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("diff needs exactly two run refs, got %d", fs.NArg())
	}
	a, err := resolveRun(*storeDir, fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := resolveRun(*storeDir, fs.Arg(1))
	if err != nil {
		return err
	}
	fmt.Printf("A: %s (digest %.12s)\nB: %s (digest %.12s)\n",
		a.ID(), a.ConfigDigest, b.ID(), b.ConfigDigest)
	if a.ConfigDigest != b.ConfigDigest {
		fmt.Println("note: configurations differ — metric deltas are expected")
	}
	fmt.Println()
	deltas := runstore.Diff(a.Summary, b.Summary, runstore.Tolerances{Default: *tol})
	runstore.RenderDeltas(os.Stdout, deltas, !*all)
	if runstore.Breaches(deltas) > 0 {
		os.Exit(1)
	}
	return nil
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	storeDir := fs.String("store", "runs", "run store directory")
	baselinePath := fs.String("baseline", "BENCH_runs.json", "committed baseline file")
	fs.Parse(args)
	bf, err := runstore.ReadBaselineFile(*baselinePath)
	if err != nil {
		return err
	}
	var runs []*runstore.Manifest
	corrupt := 0
	if fs.NArg() > 0 {
		for _, ref := range fs.Args() {
			m, err := resolveRun(*storeDir, ref)
			if err != nil {
				return err
			}
			runs = append(runs, m)
		}
	} else {
		st, err := runstore.Open(*storeDir)
		if err != nil {
			return err
		}
		var warnings []string
		runs, warnings, err = st.ListChecked()
		if err != nil {
			return err
		}
		// A corrupt manifest must fail the gate, not silently shrink the
		// set of runs being checked.
		for _, w := range warnings {
			fmt.Fprintf(os.Stderr, "arrayreport: warning: %s\n", w)
		}
		corrupt = len(warnings)
		if len(runs) == 0 && corrupt == 0 {
			return fmt.Errorf("no runs to check in %s", st.Root())
		}
	}
	breached := false
	for _, m := range runs {
		res, err := bf.Check(m)
		if err != nil {
			return err
		}
		status := "ok"
		if res.Breached() {
			// Name the breached keys on the status line itself: a CI log
			// truncated to one line per run must still say WHAT broke.
			keys := runstore.BreachedMetrics(res.Deltas)
			if len(keys) > 5 {
				keys = append(keys[:5], fmt.Sprintf("+%d more", len(keys)-5))
			}
			status = "BREACH [" + strings.Join(keys, ", ") + "]"
			breached = true
		}
		fmt.Printf("%s: %s (tol %g)\n", m.ID(), status, bf.DefaultTolerance)
		if res.ConfigDrift {
			fmt.Printf("  note: config digest drifted from the baseline (%.12s → %.12s) — regenerate with 'arrayreport baseline' if intended\n",
				bf.Find(m.Name).ConfigDigest, m.ConfigDigest)
		}
		if res.Breached() {
			runstore.RenderDeltas(os.Stdout, res.Deltas, true)
		}
	}
	if corrupt > 0 {
		fmt.Fprintf(os.Stderr, "arrayreport: %d corrupt manifest(s) in store\n", corrupt)
	}
	if breached || corrupt > 0 {
		os.Exit(1)
	}
	return nil
}

func cmdBaseline(args []string) error {
	fs := flag.NewFlagSet("baseline", flag.ExitOnError)
	storeDir := fs.String("store", "runs", "run store directory")
	out := fs.String("out", "BENCH_runs.json", "baseline file to write")
	tol := fs.Float64("tol", 0.01, "default relative tolerance recorded in the file")
	command := fs.String("command", "", "regeneration command recorded in the file")
	fs.Parse(args)
	st, err := runstore.Open(*storeDir)
	if err != nil {
		return err
	}
	runs, err := st.List()
	if err != nil {
		return err
	}
	if len(runs) == 0 {
		return fmt.Errorf("no runs in %s to build a baseline from", st.Root())
	}
	bf := runstore.BaselineFromManifests(runs, *tol,
		time.Now().UTC().Format("2006-01-02"), *command)
	if err := runstore.WriteBaselineFile(*out, bf); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d run(s), default tolerance %g\n", *out, len(bf.Runs), *tol)
	return nil
}

func cmdHTML(args []string) error {
	fs := flag.NewFlagSet("html", flag.ExitOnError)
	storeDir := fs.String("store", "runs", "run store directory")
	out := fs.String("out", "report.html", "output HTML file")
	title := fs.String("title", "disk-array runs", "report title")
	fs.Parse(args)
	st, err := runstore.Open(*storeDir)
	if err != nil {
		return err
	}
	manifests, err := st.List()
	if err != nil {
		return err
	}
	if len(manifests) == 0 {
		return fmt.Errorf("no runs in %s to report on", st.Root())
	}
	var runs []*runstore.ReportRun
	for _, m := range manifests {
		run, err := runstore.LoadReportRun(filepath.Join(st.Root(), m.ID()))
		if err != nil {
			return err
		}
		runs = append(runs, run)
	}
	f, err := atomicio.Create(*out)
	if err != nil {
		return err
	}
	if err := runstore.WriteHTMLReport(f, *title, runs); err != nil {
		f.Abort()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d run(s)\n", *out, len(runs))
	return nil
}

// cmdPerf renders the self-performance section recorded in manifests. With a
// run ref it prints that run's sample plus its per-cell table; without one it
// prints a trend view — every run in the store that carries perf data, sorted
// by CreatedAt — so regressions in wall-clock or allocation volume are
// visible across a store's history.
func cmdPerf(args []string) error {
	fs := flag.NewFlagSet("perf", flag.ExitOnError)
	storeDir := fs.String("store", "runs", "run store directory")
	fs.Parse(args)
	if fs.NArg() > 1 {
		return fmt.Errorf("perf takes at most one run ref, got %d", fs.NArg())
	}
	if fs.NArg() == 1 {
		m, err := resolveRun(*storeDir, fs.Arg(0))
		if err != nil {
			return err
		}
		return renderRunPerf(m)
	}
	st, err := runstore.Open(*storeDir)
	if err != nil {
		return err
	}
	runs, warnings, err := st.ListChecked()
	if err != nil {
		return err
	}
	for _, w := range warnings {
		logg.Errorf("warning: %s", w)
	}
	// Trend view: oldest first, so the latest run reads at the bottom next
	// to your prompt.
	sort.Slice(runs, func(i, j int) bool {
		if runs[i].CreatedAt != runs[j].CreatedAt {
			return runs[i].CreatedAt < runs[j].CreatedAt
		}
		return runs[i].ID() < runs[j].ID()
	})
	withPerf := 0
	fmt.Printf("%-28s %10s %12s %14s %12s %8s %9s  %s\n",
		"run", "wall_s", "sim_s", "events/s", "alloc_mb", "gc", "gc_ms", "created")
	for _, m := range runs {
		if m.Perf == nil || m.Perf.Run == nil {
			continue
		}
		withPerf++
		fmt.Println(perfRow(m.ID(), *m.Perf.Run) + "  " + m.CreatedAt)
	}
	if withPerf == 0 {
		fmt.Printf("no perf data in %s (recorded by runs newer than the perf section)\n", st.Root())
	} else if skipped := len(runs) - withPerf; skipped > 0 {
		logg.Debugf("skipped %d run(s) without a perf section", skipped)
	}
	return nil
}

func renderRunPerf(m *runstore.Manifest) error {
	if m.Perf == nil {
		return fmt.Errorf("run %s has no perf section (recorded before self-performance accounting)", m.ID())
	}
	fmt.Printf("run:     %s\n", m.ID())
	if m.CreatedAt != "" {
		fmt.Printf("created: %s\n", m.CreatedAt)
	}
	fmt.Printf("\n%-28s %10s %12s %14s %12s %8s %9s\n",
		"", "wall_s", "sim_s", "events/s", "alloc_mb", "gc", "gc_ms")
	if m.Perf.Run != nil {
		fmt.Println(perfRow("total", *m.Perf.Run))
	}
	keys := make([]string, 0, len(m.Perf.Cells))
	for k := range m.Perf.Cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	shared := false
	for _, k := range keys {
		s := m.Perf.Cells[k]
		fmt.Println(perfRow("cell."+k, s))
		shared = shared || s.SharedProcess
	}
	if shared {
		fmt.Println("\nnote: * marks cells measured while parallel cells shared the process —")
		fmt.Println("their alloc/GC deltas are process-wide upper bounds, not exclusive costs.")
	}
	return nil
}

// perfRow formats one PerfSample under the shared perf column header. A
// trailing '*' on the name marks a shared-process sample.
func perfRow(name string, s runstore.PerfSample) string {
	if s.SharedProcess {
		name += "*"
	}
	return fmt.Sprintf("%-28s %10.2f %12.0f %14.0f %12.2f %8.0f %9.2f",
		name, s.WallSeconds, s.SimSeconds, s.EventsPerWallSecond,
		s.AllocBytes/(1<<20), s.GCCycles, s.GCPauseSeconds*1e3)
}

// Command fleetsim runs a multi-array cluster simulation — N arrays on one
// shared-clock DES behind a routing tier with deadlines, retries, hedging,
// health gating, and cross-array failover — and prints a fleet report.
//
//	fleetsim -arrays 4 -replicas 2 -policy read -routing least-loaded
//	fleetsim -arrays 4 -deadline 2 -max-attempts 3 -hedge-mult 3
//	fleetsim -arrays 6 -racks 3 -shocks -shock-interval 600
//	fleetsim -arrays 4 -faults -spares 1 -fault-accel 5e5
//	fleetsim -arrays 2 -runs-dir runs -checkpoint-every 500
//	fleetsim -arrays 2 -runs-dir runs -checkpoint-every 500 -resume
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	diskarray "repro"
	"repro/internal/atomicio"
	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/experiment"
	"repro/internal/faults"
	"repro/internal/flagcheck"
	"repro/internal/opsserver"
	"repro/internal/runstore"
	"repro/internal/telemetry"
)

// checkpointName is the snapshot file inside a run directory.
const checkpointName = "checkpoint.json"

// manifestConfig is the digested configuration block of a fleetsim run
// manifest: everything that determines the fleet's results.
type manifestConfig struct {
	Arrays     int    `json:"arrays"`
	Replicas   int    `json:"replicas"`
	Racks      int    `json:"racks"`
	Enclosures int    `json:"enclosures"`
	Disks      int    `json:"disks"`
	Policy     string `json:"policy"`
	Routing    string `json:"routing"`

	Requests  int     `json:"requests"`
	Intensity float64 `json:"intensity"`
	Seed      int64   `json:"seed"`
	Epochs    int     `json:"epochs"`

	Deadline      float64 `json:"deadline_seconds,omitempty"`
	MaxAttempts   int     `json:"max_attempts,omitempty"`
	RetryBase     float64 `json:"retry_base_seconds,omitempty"`
	RetryCap      float64 `json:"retry_cap_seconds,omitempty"`
	RetryJitter   float64 `json:"retry_jitter_frac,omitempty"`
	HedgeMult     float64 `json:"hedge_after_p99_mult,omitempty"`
	HedgeFallback float64 `json:"hedge_fallback_seconds,omitempty"`
	MaxBacklog    int     `json:"max_backlog,omitempty"`

	Shocks map[string]any `json:"shocks,omitempty"`
	Faults map[string]any `json:"faults,omitempty"`
	Spares int            `json:"spares,omitempty"`
}

func main() {
	var (
		arrays     = flag.Int("arrays", 4, "fleet size (independent arrays on one shared clock)")
		replicas   = flag.Int("replicas", 2, "arrays each file is placed on (failover and hedging need at least 2)")
		racks      = flag.Int("racks", 2, "racks (= power domains) the arrays are striped over")
		enclosures = flag.Int("enclosures", 1, "enclosures per rack (reporting subdivision)")
		disks      = flag.Int("disks", 8, "disks per array")
		policyName = flag.String("policy", "read", "member energy policy: read | maid | pdc | always-on | drpm | read-replica | striped")
		routing    = flag.String("routing", "round-robin", "routing policy: round-robin | least-loaded | afr-aware")

		requests  = flag.Int("requests", 50000, "synthetic fleet trace length")
		intensity = flag.Float64("intensity", diskarray.LightIntensity, "arrival intensity multiplier")
		seed      = flag.Int64("seed", 1, "generator seed (also drives retry jitter)")
		epochs    = flag.Int("epochs", 24, "member policy epochs across the trace")

		deadline      = flag.Float64("deadline", 5, "per-attempt deadline in virtual seconds (0 disables timeouts and retries)")
		maxAttempts   = flag.Int("max-attempts", 3, "total attempts per request (first + retries + hedges + failovers)")
		retryBase     = flag.Float64("retry-base", 0.25, "retry backoff base in virtual seconds")
		retryCap      = flag.Float64("retry-cap", 30, "retry backoff cap in virtual seconds")
		retryJitter   = flag.Float64("retry-jitter", 0.2, "retry backoff jitter fraction in [0,1] (seeded, deterministic)")
		hedgeMult     = flag.Float64("hedge-mult", 0, "issue a hedged attempt after this multiple of the running fleet p99 (0 disables hedging)")
		hedgeFallback = flag.Float64("hedge-fallback", 1, "hedge delay in virtual seconds before the latency histogram warms up")
		maxBacklog    = flag.Int("max-backlog", 0, "mark an array draining above this foreground backlog (0 disables backpressure)")

		withShocks    = flag.Bool("shocks", false, "inject rack power shocks (correlated faults)")
		shockSeed     = flag.Int64("shock-seed", 1, "shock schedule seed")
		shockInterval = flag.Float64("shock-interval", 900, "mean virtual seconds between shocks per rack")
		shockOutage   = flag.Float64("shock-outage", 60, "mean outage duration in virtual seconds")

		withFaults = flag.Bool("faults", false, "inject Weibull disk failures into every member array")
		faultSeed  = flag.Int64("fault-seed", 1, "failure-injection seed")
		faultAccel = flag.Float64("fault-accel", 5e5, "reliability-timescale acceleration")
		spares     = flag.Int("spares", 0, "hot spares per array")

		runsDir   = flag.String("runs-dir", "", "record this run in a run store: manifest.json under <runs-dir>/<name>-<digest>/")
		runName   = flag.String("run-name", "fleetsim", "run name inside the store (requires -runs-dir)")
		ckptEvery = flag.Float64("checkpoint-every", 0, "write a whole-fleet crash-recovery snapshot every this many virtual seconds (requires -runs-dir)")
		resume    = flag.Bool("resume", false, "resume from the run directory's checkpoint.json (requires -runs-dir and the original -checkpoint-every)")
		traceDec  = flag.Bool("trace-decisions", false, "record the router's retry/hedge/failover decision log as decisions.ndjson (requires -runs-dir)")
		version   = flag.Bool("version", false, "print build information and exit")
		table     = flag.Bool("table", true, "print the per-array table")
		verbose   = flag.Bool("v", false, "verbose logging (include debug lines)")
		quiet     = flag.Bool("quiet", false, "log errors only")
		opsAddr   = flag.String("ops-addr", "", "serve the live ops plane (/metrics, /progress, /healthz) on this address while the fleet runs")
	)
	flag.Parse()
	logg := telemetry.NewLogger("fleetsim", nil, telemetry.LevelFromFlags(*quiet, *verbose))

	if *version {
		fmt.Println(runstore.VersionLine("fleetsim"))
		return
	}

	usageErr := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "fleetsim: %s\n\n", fmt.Sprintf(format, args...))
		flag.Usage()
		os.Exit(2)
	}
	explicit := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if err := flagcheck.Choice("policy", *policyName, flagcheck.Strings(experiment.AllPolicyKinds())...); err != nil {
		usageErr("%v", err)
	}
	if err := flagcheck.Choice("routing", *routing, flagcheck.Strings(cluster.RoutingPolicies())...); err != nil {
		usageErr("%v", err)
	}
	switch {
	case flag.NArg() > 0:
		usageErr("unexpected positional arguments %q", flag.Args())
	case *arrays < 1:
		usageErr("-arrays %d: a fleet needs at least 1 array", *arrays)
	case *replicas < 1 || *replicas > *arrays:
		usageErr("-replicas %d must be in [1, %d]", *replicas, *arrays)
	case *disks < 2:
		usageErr("-disks %d: an array needs at least 2 disks", *disks)
	case *epochs <= 0:
		usageErr("-epochs %d must be positive", *epochs)
	case *requests <= 0:
		usageErr("-requests %d must be positive", *requests)
	case *intensity <= 0:
		usageErr("-intensity %g must be positive", *intensity)
	case !*withShocks && (explicit["shock-seed"] || explicit["shock-interval"] || explicit["shock-outage"]):
		usageErr("shock flags require -shocks")
	case !*withFaults && (explicit["fault-seed"] || explicit["fault-accel"] || explicit["spares"]):
		usageErr("fault flags require -faults")
	case *runsDir == "" && explicit["run-name"]:
		usageErr("-run-name requires -runs-dir")
	case *ckptEvery < 0:
		usageErr("-checkpoint-every %g cannot be negative", *ckptEvery)
	case *ckptEvery > 0 && *runsDir == "":
		usageErr("-checkpoint-every requires -runs-dir (the snapshot lives in the run directory)")
	case *resume && *runsDir == "":
		usageErr("-resume requires -runs-dir")
	case *resume && *ckptEvery <= 0:
		usageErr("-resume requires the original -checkpoint-every interval (the resumed run must keep the same snapshot cadence to stay bit-identical)")
	case *traceDec && *runsDir == "":
		usageErr("-trace-decisions requires -runs-dir (the decision log is written as decisions.ndjson)")
	case *runsDir != "" && *runName == "":
		usageErr("-run-name must not be empty")
	}

	var shocks faults.ShockConfig
	if *withShocks {
		shocks = faults.ShockConfig{
			Enabled:             true,
			Seed:                *shockSeed,
			MeanIntervalSeconds: *shockInterval,
			MeanOutageSeconds:   *shockOutage,
		}
	}
	var faultCfg *faults.Config
	if *withFaults {
		fc := faults.Default()
		fc.Seed = *faultSeed
		fc.Acceleration = *faultAccel
		faultCfg = &fc
	}

	var (
		store    *runstore.Store
		manifest *runstore.Manifest
		runDir   string
	)
	start := time.Now()
	if *runsDir != "" {
		mc := manifestConfig{
			Arrays: *arrays, Replicas: *replicas, Racks: *racks,
			Enclosures: *enclosures, Disks: *disks,
			Policy: *policyName, Routing: *routing,
			Requests: *requests, Intensity: *intensity, Seed: *seed, Epochs: *epochs,
			Deadline: *deadline, MaxAttempts: *maxAttempts,
			RetryBase: *retryBase, RetryCap: *retryCap, RetryJitter: *retryJitter,
			HedgeMult: *hedgeMult, HedgeFallback: *hedgeFallback, MaxBacklog: *maxBacklog,
		}
		if *withShocks {
			m, err := runstore.ToJSONMap(shocks)
			if err != nil {
				logg.Fatal(err)
			}
			mc.Shocks = m
		}
		if faultCfg != nil {
			m, err := runstore.ToJSONMap(*faultCfg)
			if err != nil {
				logg.Fatal(err)
			}
			mc.Faults = m
			mc.Spares = *spares
		}
		var err error
		manifest, err = runstore.New("fleetsim", *runName, mc)
		if err != nil {
			logg.Fatal(err)
		}
		store, err = runstore.Open(*runsDir)
		if err != nil {
			logg.Fatal(err)
		}
		runDir, err = store.RunDir(manifest)
		if err != nil {
			logg.Fatal(err)
		}
	}

	trace, err := buildTrace(*requests, *intensity, *seed)
	if err != nil {
		logg.Fatal(err)
	}
	stats, err := trace.ComputeStats()
	if err != nil {
		logg.Fatal(err)
	}

	kind := diskarray.PolicyKind(*policyName)
	cfg := cluster.Config{
		Arrays:   *arrays,
		Replicas: *replicas,
		Topology: cluster.Topology{Racks: *racks, EnclosuresPerRack: *enclosures},
		Trace:    trace,
		Proto: diskarray.SimConfig{
			Disks:        *disks,
			EpochSeconds: stats.Duration / float64(*epochs),
			Spares:       *spares,
		},
		MakePolicy:           func(int) (diskarray.Policy, error) { return experiment.NewPolicy(kind) },
		Routing:              cluster.RoutingPolicy(*routing),
		DeadlineSeconds:      *deadline,
		MaxAttempts:          *maxAttempts,
		RetryBaseSeconds:     *retryBase,
		RetryCapSeconds:      *retryCap,
		RetryJitterFrac:      *retryJitter,
		HedgeAfterP99Mult:    *hedgeMult,
		HedgeFallbackSeconds: *hedgeFallback,
		MaxBacklog:           *maxBacklog,
		Seed:                 *seed,
		Shocks:               shocks,
	}
	if faultCfg != nil {
		cfg.Proto.Faults = faultCfg
	}
	var dlog *telemetry.DecisionLog
	if *traceDec {
		dlog = telemetry.NewDecisionLog()
		cfg.Telemetry = &telemetry.Recorder{Decisions: dlog}
	}
	if *ckptEvery > 0 {
		cfg.Checkpoint = &cluster.CheckpointSpec{
			EverySimSeconds: *ckptEvery,
			Path:            filepath.Join(runDir, checkpointName),
			Tool:            "fleetsim",
			ConfigDigest:    manifest.ConfigDigest,
		}
	}

	// The live ops plane: fleet counters and per-array health next to the
	// shared engine's watchdog position. Observation-only — the run is
	// bit-identical with or without -ops-addr.
	var srv *opsserver.Server
	if *opsAddr != "" {
		fleet := telemetry.NewFleetLive(*arrays)
		watch := des.NewWatch()
		cfg.FleetLive = fleet
		cfg.Watch = watch
		var err error
		srv, err = opsserver.Start(opsserver.Options{
			Addr:  *opsAddr,
			Tool:  "fleetsim",
			Run:   *runName,
			Watch: watch,
			Fleet: fleet,
			Log:   logg,
		})
		if err != nil {
			logg.Fatal(err)
		}
		defer srv.Close()
	}

	perfCap := runstore.StartPerf()
	var res *cluster.Result
	if *resume {
		ckptPath := filepath.Join(runDir, checkpointName)
		env, err := checkpoint.Read(ckptPath)
		if err != nil {
			logg.Fatalf("resume: %v", err)
		}
		if env.Tool != "fleetsim" {
			logg.Fatalf("resume: %s was written by %q, not fleetsim", ckptPath, env.Tool)
		}
		if env.ConfigDigest != manifest.ConfigDigest {
			logg.Fatalf("resume: %s was taken under config digest %s, current flags digest to %s — rerun with the original flags",
				ckptPath, env.ConfigDigest, manifest.ConfigDigest)
		}
		logg.Infof("resuming from %s (t=%.1f s, %d events fired)", ckptPath, env.SimTime, env.EventsFired)
		res, err = cluster.Resume(cfg, env.State)
		if err != nil {
			logg.Fatal(err)
		}
	} else {
		var err error
		res, err = cluster.Run(cfg)
		if err != nil {
			logg.Fatal(err)
		}
	}
	perf := perfCap.Sample(res.Duration, res.EventsFired, false)
	if srv != nil {
		srv.MarkDone()
	}

	if store != nil {
		manifest.Seed = *seed
		manifest.Policy = *policyName
		manifest.Workload = fmt.Sprintf("synthetic %d requests, intensity %g", *requests, *intensity)
		manifest.Summary = experiment.FleetSummary(res, *withFaults)
		manifest.Perf = &runstore.Perf{Run: &perf}
		manifest.CreatedAt = start.UTC().Format(time.RFC3339)
		manifest.WallSeconds = time.Since(start).Seconds()
		dir, err := store.Write(manifest)
		if err != nil {
			logg.Fatal(err)
		}
		if dlog != nil {
			f, err := atomicio.Create(filepath.Join(dir, "decisions.ndjson"))
			if err != nil {
				logg.Fatal(err)
			}
			if err := dlog.WriteNDJSON(f); err != nil {
				f.Close()
				logg.Fatal(err)
			}
			if err := f.Close(); err != nil {
				logg.Fatal(err)
			}
		}
		logg.Infof("run recorded in %s", dir)
	}

	fmt.Printf("fleet of %d arrays (%d disks each, %d racks) — %s members, %s routing\n",
		res.Arrays, *disks, *racks, *policyName, res.Routing)
	fmt.Printf("requests:       %d arrived, %d served, %d failed, %d shed\n",
		res.Requests, res.Served, res.Failed, res.Shed)
	fmt.Printf("fleet latency:  mean %.2f ms (p95 %.2f, p99 %.2f, max %.0f ms)\n",
		res.MeanResponse*1e3, res.P95Response*1e3, res.P99Response*1e3, res.MaxResponse*1e3)
	fmt.Printf("resilience:     %d retries, %d hedges (%d won), %d failovers, %d timeouts, %d deferred\n",
		res.Retries, res.Hedges, res.HedgeWins, res.Failovers, res.Timeouts, res.Deferred)
	fmt.Printf("faults:         %d disk failures, %d member-lost requests, %d rack shocks\n",
		res.DiskFailures, res.LostRequests, res.ShocksInjected)
	fmt.Printf("energy:         %.1f kJ   worst member AFR: %.3f%%   events: %d\n",
		res.EnergyJ/1e3, res.WorstAFR, res.EventsFired)

	if *table {
		fmt.Printf("\n%5s %4s %4s %9s %8s %8s %8s %9s\n",
			"array", "rack", "encl", "requests", "energy", "AFR%", "failures", "dataloss")
		for _, a := range res.PerArray {
			fmt.Printf("%5d %4d %4d %9d %7.1fk %8.3f %8d %9d\n",
				a.Array, a.Rack, a.Enclosure, a.Requests, a.EnergyJ/1e3,
				a.ArrayAFR, a.DiskFailures, a.DataLossEvents)
		}
	}
}

// buildTrace generates the synthetic fleet workload, mirroring arraysim's
// generated-trace path so fleet-of-1 comparisons replay identical requests.
func buildTrace(requests int, intensity float64, seed int64) (*diskarray.Trace, error) {
	cfg := diskarray.DefaultGenConfig()
	cfg.NumRequests = requests
	cfg.MeanInterarrival /= intensity
	cfg.Seed = seed
	cfg.DiurnalProfile = diskarray.DefaultDiurnalProfile()
	duration := float64(cfg.NumRequests) * cfg.MeanInterarrival
	cfg.PhaseSeconds = duration / 12
	cfg.PhaseRotate = 0.10
	return diskarray.GenerateTrace(cfg)
}

// Command simlint runs the repository's determinism, checkpoint, and
// concurrency analyzers (internal/analysis) over Go package patterns and
// prints any contract violations. It exits 0 on a clean tree, 1 when
// diagnostics were reported, and 2 on a load/run failure.
//
// Usage:
//
//	go run ./cmd/simlint ./...
//	go run ./cmd/simlint -list
//	go run ./cmd/simlint -json ./... > simlint.json
//
// The suite enforces the invariants DESIGN.md §11 and §16 document: no
// wall-clock or ambient entropy in simulation packages (detrand), no
// map-iteration order leaking into results (maporder), checkpoint records
// covering their state structs (ckptcover), artifact writes through
// internal/atomicio (atomicwrite), telemetry handles obtained from
// registries (nilhandle), no shared mutable state captured by sweep
// goroutines (sharedcapture), engine/telemetry/policy methods confined to
// their constructing goroutine (engineaffinity), and allocation-free
// //simlint:hotpath functions (hotalloc). Violations are suppressed
// case-by-case with `//simlint:allow <analyzer> -- reason` comments, never
// by editing the suite's scope.
//
// Diagnostics are printed deduplicated and sorted by position, one per
// line; -json emits the same set as a JSON array for CI artifacts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis/simlint"
	"repro/internal/telemetry"
)

// jsonDiagnostic is the machine-readable form of one finding, stable for CI
// artifact consumers: positions are pre-split so nothing needs to re-parse
// the human-readable "file:line:col" form.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	dir := flag.String("dir", ".", "module directory to resolve patterns in")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout (for CI artifacts)")
	verbose := flag.Bool("v", false, "verbose logging (include debug lines)")
	quiet := flag.Bool("quiet", false, "log errors only")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: simlint [-list] [-json] [-v] [-quiet] [-dir module] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	logg := telemetry.NewLogger("simlint", nil, telemetry.LevelFromFlags(*quiet, *verbose))

	if *list {
		for _, a := range simlint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	diags, loader, err := simlint.Run(*dir, flag.Args()...)
	if err != nil {
		logg.Errorf("%v", err)
		os.Exit(2)
	}
	logg.Debugf("analyzed %s", *dir)
	if *jsonOut {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			pos := loader.Fset().Position(d.Pos)
			out = append(out, jsonDiagnostic{
				File:     pos.Filename,
				Line:     pos.Line,
				Column:   pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			logg.Errorf("%v", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			pos := loader.Fset().Position(d.Pos)
			fmt.Printf("%s: %s [%s]\n", pos, d.Message, d.Analyzer)
		}
	}
	if len(diags) > 0 {
		logg.Errorf("%d violation(s)", len(diags))
		os.Exit(1)
	}
}

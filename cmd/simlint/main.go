// Command simlint runs the repository's determinism and checkpoint
// analyzers (internal/analysis) over Go package patterns and prints any
// contract violations. It exits 0 on a clean tree, 1 when diagnostics were
// reported, and 2 on a load/run failure.
//
// Usage:
//
//	go run ./cmd/simlint ./...
//	go run ./cmd/simlint -list
//
// The suite enforces the invariants DESIGN.md §11 documents: no wall-clock
// or ambient entropy in simulation packages (detrand), no map-iteration
// order leaking into results (maporder), checkpoint records covering their
// state structs (ckptcover), artifact writes through internal/atomicio
// (atomicwrite), and telemetry handles obtained from registries (nilhandle).
// Violations are suppressed case-by-case with `//simlint:allow <analyzer>
// -- reason` comments, never by editing the suite's scope.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis/simlint"
	"repro/internal/telemetry"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	dir := flag.String("dir", ".", "module directory to resolve patterns in")
	verbose := flag.Bool("v", false, "verbose logging (include debug lines)")
	quiet := flag.Bool("quiet", false, "log errors only")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: simlint [-list] [-v] [-quiet] [-dir module] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	logg := telemetry.NewLogger("simlint", nil, telemetry.LevelFromFlags(*quiet, *verbose))

	if *list {
		for _, a := range simlint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	diags, loader, err := simlint.Run(*dir, flag.Args()...)
	if err != nil {
		logg.Errorf("%v", err)
		os.Exit(2)
	}
	logg.Debugf("analyzed %s", *dir)
	for _, d := range diags {
		pos := loader.Fset().Position(d.Pos)
		fmt.Printf("%s: %s [%s]\n", pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		logg.Errorf("%d violation(s)", len(diags))
		os.Exit(1)
	}
}

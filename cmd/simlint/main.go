// Command simlint runs the repository's determinism and checkpoint
// analyzers (internal/analysis) over Go package patterns and prints any
// contract violations. It exits 0 on a clean tree, 1 when diagnostics were
// reported, and 2 on a load/run failure.
//
// Usage:
//
//	go run ./cmd/simlint ./...
//	go run ./cmd/simlint -list
//
// The suite enforces the invariants DESIGN.md §11 documents: no wall-clock
// or ambient entropy in simulation packages (detrand), no map-iteration
// order leaking into results (maporder), checkpoint records covering their
// state structs (ckptcover), artifact writes through internal/atomicio
// (atomicwrite), and telemetry handles obtained from registries (nilhandle).
// Violations are suppressed case-by-case with `//simlint:allow <analyzer>
// -- reason` comments, never by editing the suite's scope.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis/simlint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	dir := flag.String("dir", ".", "module directory to resolve patterns in")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: simlint [-list] [-dir module] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range simlint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	diags, loader, err := simlint.Run(*dir, flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		pos := loader.Fset().Position(d.Pos)
		fmt.Printf("%s: %s [%s]\n", pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}

// Command pressctl evaluates the PRESS reliability model from the command
// line: per-factor AFRs, the integrated per-disk AFR, the §3.4 Coffin-Manson
// derivation, and safe transition budgets.
//
// Examples:
//
//	pressctl -temp 50 -util 0.8 -freq 120
//	pressctl -derive
//	pressctl -budget 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiment"
	"repro/internal/reliability"
	"repro/internal/runstore"
	"repro/internal/telemetry"
)

func main() {
	var (
		tempC   = flag.Float64("temp", 50, "operating temperature in °C")
		util    = flag.Float64("util", 0.5, "disk utilization in [0,1]")
		freq    = flag.Float64("freq", 0, "speed transitions per day")
		mode    = flag.String("mode", "shared-baseline", "integration mode: shared-baseline | max-factor | mean-factor")
		derive  = flag.Bool("derive", false, "print the paper's §3.4 Coffin-Manson derivation and exit")
		budget  = flag.Float64("budget", 0, "print the max transitions/day whose AFR adder stays under this many points, then exit")
		ocr     = flag.Bool("ocr-eq3", false, "use the literal OCR reading of Equation 3 instead of the reconstructed fit")
		version = flag.Bool("version", false, "print build information and exit")
		verbose = flag.Bool("v", false, "verbose logging (include debug lines)")
		quiet   = flag.Bool("quiet", false, "log errors only")
	)
	flag.Parse()
	logg := telemetry.NewLogger("pressctl", nil, telemetry.LevelFromFlags(*quiet, *verbose))

	if *version {
		fmt.Println(runstore.VersionLine("pressctl"))
		return
	}

	if *derive {
		experiment.RenderDerivation(os.Stdout, experiment.DerivationConstants())
		return
	}

	var opts []reliability.Option
	if *ocr {
		opts = append(opts, reliability.WithFreqFunction(reliability.PaperEq3OCRQuadratic()))
	}
	switch *mode {
	case "shared-baseline":
		opts = append(opts, reliability.WithIntegrationMode(reliability.SharedBaseline))
	case "max-factor":
		opts = append(opts, reliability.WithIntegrationMode(reliability.MaxFactor))
	case "mean-factor":
		opts = append(opts, reliability.WithIntegrationMode(reliability.MeanFactor))
	default:
		logg.Fatalf("unknown mode %q", *mode)
	}
	model := reliability.NewModel(opts...)

	if *budget > 0 {
		f := model.FreqFunction().SolveBudget(*budget)
		fmt.Printf("transitions/day staying under +%.3f AFR points: %.1f\n", *budget, f)
		return
	}

	factors := reliability.Factors{TempC: *tempC, Utilization: *util, TransitionsPerDay: *freq}
	afr, err := model.DiskAFR(factors)
	if err != nil {
		logg.Fatal(err)
	}
	fmt.Printf("temperature %.1f °C      -> AFR %.3f%%\n", *tempC, model.TempAFR(*tempC))
	fmt.Printf("utilization %.1f%%       -> AFR %.3f%%\n", *util*100, model.UtilAFR(*util))
	fmt.Printf("transitions %.1f /day    -> AFR adder %.3f points\n", *freq, model.FreqAFR(*freq))
	fmt.Printf("integrated (%s) -> AFR %.3f%%\n", model.Mode(), afr)
}

// Command experiments regenerates every table and figure in the paper's
// evaluation section.
//
//	experiments -fig all                 # everything, interactive scale
//	experiments -fig 7a -scale 0.2       # one panel, bigger trace
//	experiments -fig 7 -heavy            # Figure 7 under the heavy workload
//	experiments -fig 7b -csv out.csv     # machine-readable series
//	experiments -fig all -full           # the full paper-size day (slow)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strings"
	"time"

	"repro/internal/atomicio"
	"repro/internal/experiment"
	"repro/internal/flagcheck"
	"repro/internal/opsserver"
	"repro/internal/reliability"
	"repro/internal/runstore"
	"repro/internal/telemetry"
)

// logg is the command-wide leveled logger (level set from -quiet/-v).
var logg = telemetry.NewLogger("experiments", nil, telemetry.LogInfo)

// recordSweep writes one sweep condition's manifest into the run store,
// stamping wall time. No-op when the store is nil (-runs-dir unset).
func recordSweep(store *runstore.Store, name string, cfg experiment.SweepConfig,
	res *experiment.SweepResult, start time.Time, pc runstore.PerfCapture) {
	if store == nil {
		return
	}
	m, err := experiment.SweepManifest(name, cfg, res)
	if err != nil {
		logg.Fatal(err)
	}
	m.CreatedAt = start.UTC().Format(time.RFC3339)
	m.WallSeconds = time.Since(start).Seconds()
	// The sweep-level perf sample aggregates every cell: total virtual time
	// and events over the sweep's wall-clock and runtime deltas.
	var simSeconds float64
	var events uint64
	for _, c := range res.Cells {
		if c.Result != nil {
			simSeconds += c.Result.Duration
			events += c.Result.EventsFired
		}
	}
	run := pc.Sample(simSeconds, events, false)
	if m.Perf == nil {
		m.Perf = &runstore.Perf{}
	}
	m.Perf.Run = &run
	dir, err := store.Write(m)
	if err != nil {
		logg.Fatal(err)
	}
	writeDecisionLogs(dir, res)
	logg.Infof("run %s recorded in %s", name, dir)
}

// writeDecisionLogs persists each traced cell's decision log next to the
// sweep manifest as decisions-<policy>[-<raid>]-<disks>.ndjson. No-op when
// the sweep ran without TraceDecisions.
func writeDecisionLogs(dir string, res *experiment.SweepResult) {
	for _, cell := range res.Cells {
		if cell.Decisions == nil {
			continue
		}
		name := fmt.Sprintf("decisions-%s-%d.ndjson", cell.Policy, cell.Disks)
		if cell.RAID != "" {
			name = fmt.Sprintf("decisions-%s-%s-%d.ndjson", cell.Policy, cell.RAID, cell.Disks)
		}
		f, err := atomicio.Create(filepath.Join(dir, name))
		if err != nil {
			logg.Fatal(err)
		}
		if err := cell.Decisions.WriteNDJSON(f); err != nil {
			f.Close()
			logg.Fatal(err)
		}
		if err := f.Close(); err != nil {
			logg.Fatal(err)
		}
	}
}

// recordFleetSweep writes one fleet sweep condition's manifest into the run
// store, mirroring recordSweep.
func recordFleetSweep(store *runstore.Store, name string, cfg experiment.FleetSweepConfig,
	res *experiment.FleetSweepResult, start time.Time, pc runstore.PerfCapture) {
	if store == nil {
		return
	}
	m, err := experiment.FleetManifest(name, cfg, res)
	if err != nil {
		logg.Fatal(err)
	}
	m.CreatedAt = start.UTC().Format(time.RFC3339)
	m.WallSeconds = time.Since(start).Seconds()
	var simSeconds float64
	var events uint64
	for _, c := range res.Cells {
		if c.Result != nil {
			simSeconds += c.Result.Duration
			events += c.Result.EventsFired
		}
	}
	run := pc.Sample(simSeconds, events, false)
	if m.Perf == nil {
		m.Perf = &runstore.Perf{}
	}
	m.Perf.Run = &run
	dir, err := store.Write(m)
	if err != nil {
		logg.Fatal(err)
	}
	for _, cell := range res.Cells {
		if cell.Decisions == nil {
			continue
		}
		name := fmt.Sprintf("decisions-fleet-%s-%s-%d.ndjson", cell.Policy, cell.Routing, cell.Arrays)
		f, err := atomicio.Create(filepath.Join(dir, name))
		if err != nil {
			logg.Fatal(err)
		}
		if err := cell.Decisions.WriteNDJSON(f); err != nil {
			f.Close()
			logg.Fatal(err)
		}
		if err := f.Close(); err != nil {
			logg.Fatal(err)
		}
	}
	logg.Infof("run %s recorded in %s", name, dir)
}

// skipRecordedFleet mirrors skipRecorded for fleet sweep conditions.
func skipRecordedFleet(store *runstore.Store, name string, cfg experiment.FleetSweepConfig) bool {
	if store == nil {
		return false
	}
	id, err := experiment.FleetManifestID(name, cfg)
	if err != nil {
		return false
	}
	m, err := runstore.ReadManifest(filepath.Join(store.Root(), id))
	if err != nil || m.Status == string(experiment.CellFailed) {
		return false
	}
	logg.Infof("resume: skipping %s (already recorded as %s)", name, id)
	return true
}

// skipRecorded reports whether the store already holds a manifest for this
// sweep condition — same name, same config digest — whose status is not
// "failed". A -resume driver uses it to skip work a previous (possibly
// killed) invocation already completed.
func skipRecorded(store *runstore.Store, name string, cfg experiment.SweepConfig) bool {
	if store == nil {
		return false
	}
	id, err := experiment.SweepManifestID(name, cfg)
	if err != nil {
		return false
	}
	m, err := runstore.ReadManifest(filepath.Join(store.Root(), id))
	if err != nil || m.Status == string(experiment.CellFailed) {
		return false
	}
	logg.Infof("resume: skipping %s (already recorded as %s)", name, id)
	return true
}

// validFigures is the closed set -fig accepts; "all" runs everything except
// the fleet sweep, which multiplies the workload by the fleet size and is
// requested explicitly.
var validFigures = []string{
	"2b", "3b", "4a", "4b", "5", "derive", "7", "7a", "7b", "7c",
	"faults", "raidloss", "fleet", "ablations", "calibration", "all",
}

func main() {
	os.Exit(run())
}

// run is main's body; it returns the process exit code — the number of sweep
// cells that ultimately failed (capped at 125), zero on full success — so
// deferred profile writers still flush on the failure path.
func run() int {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: "+strings.Join(validFigures, " | "))
		scale    = flag.Float64("scale", 0.05, "trace scale for Figure 7 sweeps (1 = full day)")
		full     = flag.Bool("full", false, "shorthand for -scale 1 (the full 1.48M-request day)")
		heavy    = flag.Bool("heavy", false, "run Figure 7 under the heavy workload condition")
		both     = flag.Bool("both", false, "run Figure 7 under both workload conditions")
		csvPath  = flag.String("csv", "", "also write machine-readable output to this file")
		steps    = flag.Int("steps", 13, "samples per axis for the function figures")
		runsDir  = flag.String("runs-dir", "", "record one manifest per sweep condition in this run store")
		traceDec = flag.Bool("trace-decisions", false, "trace every policy decision: attribution rollups land in the sweep manifests and per-cell decisions-*.ndjson logs in the run directories (requires -runs-dir)")
		resume   = flag.Bool("resume", false, "skip sweep conditions already recorded with an ok status in -runs-dir")
		retries  = flag.Int("retries", 0, "extra attempts per failed sweep cell (exponential backoff between attempts)")
		workers  = flag.Int("workers", 0, "sweep worker-pool size; 0 means one worker per CPU. Results are bit-identical for every value — -workers=1 is the sequential reference the CI identity gate diffs against")
		version  = flag.Bool("version", false, "print build information and exit")

		progress     = flag.Bool("progress", false, "log sweep phases and per-cell progress to stderr")
		opsAddr      = flag.String("ops-addr", "", "serve the live ops plane (/metrics, /progress, /healthz) on this address, e.g. 127.0.0.1:9100, while the sweeps run")
		verbose      = flag.Bool("v", false, "verbose logging (include debug lines)")
		quiet        = flag.Bool("quiet", false, "log errors only")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a heap profile to this file")
		runtimeTrace = flag.String("runtime-trace", "", "write a Go runtime execution trace to this file")
	)
	flag.Parse()
	logg = telemetry.NewLogger("experiments", nil, telemetry.LevelFromFlags(*quiet, *verbose))

	if *version {
		fmt.Println(runstore.VersionLine("experiments"))
		return 0
	}
	if err := flagcheck.Choice("fig", *fig, validFigures...); err != nil {
		logg.Fatal(err)
	}

	if *full {
		*scale = 1
	}
	if *retries < 0 {
		logg.Fatal("-retries must be >= 0")
	}

	var store *runstore.Store
	if *runsDir != "" {
		var err error
		store, err = runstore.Open(*runsDir)
		if err != nil {
			logg.Fatal(err)
		}
	}
	if *resume && store == nil {
		logg.Fatal("-resume requires -runs-dir (resume skips conditions by their recorded manifests)")
	}
	if *traceDec && store == nil {
		logg.Fatal("-trace-decisions requires -runs-dir (decision logs are recorded next to the sweep manifests)")
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile) //simlint:allow atomicwrite -- pprof streams into a live file; a torn profile from a crashed run is acceptable debug output
		if err != nil {
			logg.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			logg.Fatal(err)
		}
		defer func() { pprof.StopCPUProfile(); f.Close() }()
	}
	if *runtimeTrace != "" {
		f, err := os.Create(*runtimeTrace) //simlint:allow atomicwrite -- runtime/trace streams into a live file; a torn trace from a crashed run is acceptable debug output
		if err != nil {
			logg.Fatal(err)
		}
		if err := rtrace.Start(f); err != nil {
			logg.Fatal(err)
		}
		defer func() { rtrace.Stop(); f.Close() }()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := atomicio.Create(*memprofile)
		if err != nil {
			logg.Fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Abort()
			logg.Fatal(err)
		}
		if err := f.Close(); err != nil {
			logg.Fatal(err)
		}
	}()

	var prog *telemetry.Progress
	if *progress {
		prog = telemetry.NewProgress(logg, 2*time.Second)
	}

	// One ops server for the whole invocation: each sweep condition installs
	// its tracker via SetSweep, so /progress and /metrics follow whichever
	// sweep is currently running. Observation-only — results are
	// bit-identical with or without -ops-addr.
	var srv *opsserver.Server
	if *opsAddr != "" {
		var err error
		srv, err = opsserver.Start(opsserver.Options{
			Addr: *opsAddr,
			Tool: "experiments",
			Log:  logg,
		})
		if err != nil {
			logg.Fatal(err)
		}
		defer srv.Close()
	}
	// runSweep attaches a fresh tracker (when the ops plane is up) and runs
	// the condition.
	runSweep := func(name string, cfg *experiment.SweepConfig) (*experiment.SweepResult, error) {
		cfg.Parallelism = *workers
		if srv != nil {
			par := cfg.Parallelism
			if par <= 0 {
				par = runtime.NumCPU()
			}
			track := telemetry.NewSweepTracker(cfg.CellKeys(), par)
			cfg.Track = track
			srv.SetSweep(track)
			srv.SetRun(name, nil, nil)
		}
		return experiment.RunSweep(*cfg)
	}

	var csvW io.Writer
	if *csvPath != "" {
		// Atomic commit: the CSV appears under its final name only when the
		// sweep finishes, so a crashed run never leaves a torn artifact.
		f, err := atomicio.Create(*csvPath)
		if err != nil {
			logg.Fatal(err)
		}
		defer f.Close()
		csvW = f
	}

	model := reliability.NewModel()
	failedCells := 0
	want := func(names ...string) bool {
		if *fig == "all" {
			return true
		}
		for _, n := range names {
			if *fig == n {
				return true
			}
		}
		return false
	}

	if want("2b") {
		pts, err := experiment.Fig2bTemperatureFunction(model, *steps)
		if err != nil {
			logg.Fatal(err)
		}
		experiment.RenderFunctionTable(os.Stdout, pts, "temp_C",
			"Figure 2b — temperature-reliability function (3-year-old drives)")
		fmt.Println()
		if csvW != nil {
			if err := experiment.WriteFunctionCSV(csvW, pts, "temp_c"); err != nil {
				logg.Fatal(err)
			}
		}
	}
	if want("3b") {
		pts, err := experiment.Fig3bUtilizationFunction(model, *steps)
		if err != nil {
			logg.Fatal(err)
		}
		experiment.RenderFunctionTable(os.Stdout, pts, "util",
			"Figure 3b — utilization-reliability function (4-year-old drives)")
		fmt.Println()
		if csvW != nil {
			if err := experiment.WriteFunctionCSV(csvW, pts, "utilization"); err != nil {
				logg.Fatal(err)
			}
		}
	}
	if want("4a") {
		pts, err := experiment.Fig4aIDEMAAdder(model, *steps)
		if err != nil {
			logg.Fatal(err)
		}
		experiment.RenderFunctionTable(os.Stdout, pts, "startstops/day",
			"Figure 4a — IDEMA spindle start/stop failure-rate adder")
		fmt.Println()
	}
	if want("4b") {
		pts, err := experiment.Fig4bFrequencyFunction(model, *steps)
		if err != nil {
			logg.Fatal(err)
		}
		experiment.RenderFunctionTable(os.Stdout, pts, "transitions/day",
			"Figure 4b — frequency-reliability function (Eq. 3, ½ × Figure 4a)")
		fmt.Println()
		if csvW != nil {
			if err := experiment.WriteFunctionCSV(csvW, pts, "transitions_per_day"); err != nil {
				logg.Fatal(err)
			}
		}
	}
	if want("5") {
		at40, at50, err := experiment.Fig5Surfaces(model, 7, 9)
		if err != nil {
			logg.Fatal(err)
		}
		experiment.RenderSurfaceTable(os.Stdout, at40, "Figure 5a — PRESS surface at 40 °C (AFR%)")
		fmt.Println()
		experiment.RenderSurfaceTable(os.Stdout, at50, "Figure 5b — PRESS surface at 50 °C (AFR%)")
		fmt.Println()
	}
	if want("derive") {
		fmt.Println("§3.4 — modified Coffin-Manson derivation")
		experiment.RenderDerivation(os.Stdout, experiment.DerivationConstants())
		fmt.Println()
	}

	if want("7", "7a", "7b", "7c") {
		conditions := []struct {
			name      string
			intensity float64
		}{}
		switch {
		case *both:
			conditions = append(conditions,
				struct {
					name      string
					intensity float64
				}{"light", experiment.LightIntensity},
				struct {
					name      string
					intensity float64
				}{"heavy", experiment.HeavyIntensity})
		case *heavy:
			conditions = append(conditions, struct {
				name      string
				intensity float64
			}{"heavy", experiment.HeavyIntensity})
		default:
			conditions = append(conditions, struct {
				name      string
				intensity float64
			}{"light", experiment.LightIntensity})
		}
		for _, cond := range conditions {
			cfg := experiment.DefaultSweepConfig()
			cfg.Scale = *scale
			cfg.Intensity = cond.intensity
			cfg.MaxAttempts = 1 + *retries
			cfg.Progress = prog
			cfg.TraceDecisions = *traceDec
			condName := "fig7-" + cond.name
			if *resume && skipRecorded(store, condName, cfg) {
				continue
			}
			start := time.Now()
			pc := runstore.StartPerf()
			res, err := runSweep(condName, &cfg)
			if res == nil {
				logg.Fatal(err)
			}
			if err != nil {
				logg.Errorf("sweep %s: %v", condName, err)
				failedCells += len(res.FailedCells())
			}
			recordSweep(store, condName, cfg, res, start, pc)
			fmt.Printf("Figure 7 — %s workload (scale %.3g, %s)\n\n",
				cond.name, *scale, time.Since(start).Round(time.Millisecond))
			panels := []struct {
				id     string
				metric experiment.Metric
				title  string
			}{
				{"7a", experiment.MetricAFR, "Figure 7a — reliability (array AFR)"},
				{"7b", experiment.MetricEnergy, "Figure 7b — energy consumption"},
				{"7c", experiment.MetricResponse, "Figure 7c — mean response time"},
			}
			for _, p := range panels {
				if *fig != "all" && *fig != "7" && *fig != p.id {
					continue
				}
				if err := experiment.RenderSweepTable(os.Stdout, res, p.metric, p.title); err != nil {
					logg.Fatal(err)
				}
				if err := experiment.RenderImprovements(os.Stdout, res, p.metric, experiment.KindREAD); err != nil {
					logg.Fatal(err)
				}
				fmt.Println()
			}
			if csvW != nil {
				fmt.Fprintf(csvW, "# figure 7, %s workload\n", cond.name)
				if err := experiment.WriteSweepCSV(csvW, res); err != nil {
					logg.Fatal(err)
				}
			}
		}
	}

	if want("faults") {
		cfg := experiment.DefaultFaultSweepConfig()
		cfg.Scale = *scale
		if *heavy {
			cfg.Intensity = experiment.HeavyIntensity
		}
		cfg.MaxAttempts = 1 + *retries
		cfg.Progress = prog
		cfg.TraceDecisions = *traceDec
		faultsName := "faults-light"
		if *heavy {
			faultsName = "faults-heavy"
		}
		if !*resume || !skipRecorded(store, faultsName, cfg) {
			start := time.Now()
			pc := runstore.StartPerf()
			res, err := runSweep(faultsName, &cfg)
			if res == nil {
				logg.Fatal(err)
			}
			if err != nil {
				logg.Errorf("sweep %s: %v", faultsName, err)
				failedCells += len(res.FailedCells())
			}
			recordSweep(store, faultsName, cfg, res, start, pc)
			fmt.Printf("Fault sweep — energy vs observed data loss (scale %.3g, accel %.0g, %d spare(s), %s)\n\n",
				*scale, experiment.FaultSweepAcceleration, cfg.Spares, time.Since(start).Round(time.Millisecond))
			experiment.RenderFaultSummary(os.Stdout, res,
				"Observed reliability — Weibull failures under live PRESS hazard scaling")
			fmt.Println()
			if csvW != nil {
				fmt.Fprintf(csvW, "# fault sweep\n")
				if err := experiment.WriteSweepCSV(csvW, res); err != nil {
					logg.Fatal(err)
				}
			}
		}
	}

	if want("raidloss") {
		cfg := experiment.DefaultRAIDLossSweepConfig()
		cfg.Scale = *scale
		if *heavy {
			cfg.Intensity = experiment.HeavyIntensity
		}
		cfg.MaxAttempts = 1 + *retries
		cfg.Progress = prog
		cfg.TraceDecisions = *traceDec
		raidName := "raidloss-light"
		if *heavy {
			raidName = "raidloss-heavy"
		}
		if !*resume || !skipRecorded(store, raidName, cfg) {
			start := time.Now()
			pc := runstore.StartPerf()
			res, err := runSweep(raidName, &cfg)
			if res == nil {
				logg.Fatal(err)
			}
			if err != nil {
				logg.Errorf("sweep %s: %v", raidName, err)
				failedCells += len(res.FailedCells())
			}
			recordSweep(store, raidName, cfg, res, start, pc)
			fmt.Printf("RAID-loss sweep — MTTDL per RAID organization × energy policy (scale %.3g, accel %.0g, %d spare(s), %s)\n\n",
				*scale, experiment.RAIDLossAcceleration, cfg.Spares, time.Since(start).Round(time.Millisecond))
			experiment.RenderRAIDLoss(os.Stdout, res,
				"Data-loss combinations — latent sector errors, scrubbing, Weibull rebuilds")
			fmt.Println()
			if csvW != nil {
				fmt.Fprintf(csvW, "# raidloss sweep\n")
				if err := experiment.WriteSweepCSV(csvW, res); err != nil {
					logg.Fatal(err)
				}
			}
		}
	}

	if want("calibration") {
		pts, err := experiment.IntensityScan(experiment.AblationConfig{Scale: *scale}, nil, nil)
		if err != nil {
			logg.Fatal(err)
		}
		experiment.RenderIntensityScan(os.Stdout, pts,
			"Calibration — metrics vs arrival intensity (10 disks)")
		fmt.Println()
	}

	if want("ablations") {
		acfg := experiment.AblationConfig{Scale: *scale}
		if *heavy {
			acfg.Intensity = experiment.HeavyIntensity
		}
		caps, err := experiment.TransitionCapAblation(acfg, nil)
		if err != nil {
			logg.Fatal(err)
		}
		experiment.RenderVariants(os.Stdout, caps,
			"Ablation — READ transition cap S (the 65/day question)")
		fmt.Println()
		design, err := experiment.READDesignAblation(acfg)
		if err != nil {
			logg.Fatal(err)
		}
		experiment.RenderVariants(os.Stdout, design, "Ablation — READ design elements")
		fmt.Println()
		panel, err := experiment.BaselinePanelAblation(acfg)
		if err != nil {
			logg.Fatal(err)
		}
		experiment.RenderVariants(os.Stdout, panel, "Panel — every policy, one workload")
		fmt.Println()
	}

	// The fleet sweep runs only when asked for by name: every cell simulates
	// a whole fleet on one engine, so "all" deliberately excludes it.
	if *fig == "fleet" {
		cfg := experiment.DefaultFleetSweepConfig()
		cfg.Scale = *scale
		if *heavy {
			cfg.Intensity = experiment.HeavyIntensity
		}
		cfg.CellAttempts = 1 + *retries
		cfg.Parallelism = *workers
		cfg.Progress = prog
		cfg.TraceDecisions = *traceDec
		fleetName := "fleet-light"
		if *heavy {
			fleetName = "fleet-heavy"
		}
		if !*resume || !skipRecordedFleet(store, fleetName, cfg) {
			if srv != nil {
				par := cfg.Parallelism
				if par <= 0 {
					par = runtime.NumCPU()
				}
				track := telemetry.NewSweepTracker(cfg.CellKeys(), par)
				cfg.Track = track
				srv.SetSweep(track)
				srv.SetRun(fleetName, nil, nil)
			}
			start := time.Now()
			pc := runstore.StartPerf()
			res, err := experiment.RunFleetSweep(cfg)
			if res == nil {
				logg.Fatal(err)
			}
			if err != nil {
				logg.Errorf("sweep %s: %v", fleetName, err)
				failedCells += len(res.FailedCells())
			}
			recordFleetSweep(store, fleetName, cfg, res, start, pc)
			fmt.Printf("Fleet sweep — routing × policy over fleet sizes (scale %.3g, replicas %d, %s)\n\n",
				*scale, cfg.Replicas, time.Since(start).Round(time.Millisecond))
			experiment.RenderFleetSummary(os.Stdout, res,
				"Fleet resilience — deadlines, retries, hedging, failover")
			fmt.Println()
			if csvW != nil {
				fmt.Fprintf(csvW, "# fleet sweep\n")
				if err := experiment.WriteFleetCSV(csvW, res); err != nil {
					logg.Fatal(err)
				}
			}
		}
	}

	if srv != nil {
		srv.MarkDone()
	}
	if failedCells > 0 {
		logg.Errorf("%d sweep cell(s) failed after all retries", failedCells)
		return min(failedCells, 125)
	}
	return 0
}

// Benchmarks regenerating every table and figure in the paper's evaluation.
//
// The analytic figures (2b, 3b, 4a/4b, 5a/5b, and the §3.4 derivation) are
// cheap model evaluations. The Figure 7 panels are full trace-driven sweeps;
// their benchmarks run a reduced-scale sweep per iteration and report the
// headline comparison as custom metrics (read_vs_maid_pct, read_vs_pdc_pct),
// so `go test -bench` output doubles as the reproduction table. Run
// cmd/experiments for the full-scale numbers.
package diskarray

import (
	"strconv"
	"testing"

	"repro/internal/experiment"
)

// ---- Figure 2b: the temperature-reliability function ----

func BenchmarkFig2bTemperatureFunction(b *testing.B) {
	m := NewPRESS()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := experiment.Fig2bTemperatureFunction(m, 31)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(pts[len(pts)-1].AFR, "afr_at_50C_pct")
		}
	}
}

// ---- Figure 3b: the utilization-reliability function ----

func BenchmarkFig3bUtilizationFunction(b *testing.B) {
	m := NewPRESS()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := experiment.Fig3bUtilizationFunction(m, 16)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(pts[len(pts)-1].AFR, "afr_at_100pct_util")
		}
	}
}

// ---- Figure 4a/4b: the IDEMA adder and frequency-reliability function ----

func BenchmarkFig4bFrequencyFunction(b *testing.B) {
	m := NewPRESS()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := experiment.Fig4bFrequencyFunction(m, 33)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(pts[len(pts)-1].AFR, "adder_at_1600_per_day")
		}
	}
}

func BenchmarkFig4aIDEMAAdder(b *testing.B) {
	m := NewPRESS()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig4aIDEMAAdder(m, 33); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figures 5a/5b: the PRESS surfaces at 40 and 50 °C ----

func BenchmarkFig5PressSurface(b *testing.B) {
	m := NewPRESS()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		at40, at50, err := experiment.Fig5Surfaces(m, 16, 33)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(at40[len(at40)-1].AFR, "afr_40C_worst_corner")
			b.ReportMetric(at50[len(at50)-1].AFR, "afr_50C_worst_corner")
		}
	}
}

// ---- §3.4: the Coffin-Manson derivation constants ----

func BenchmarkCoffinMansonDerivation(b *testing.B) {
	b.ReportAllocs()
	var d Derivation
	for i := 0; i < b.N; i++ {
		d = DefaultCoffinManson().Derive()
	}
	b.ReportMetric(d.TransitionsToFailure, "transitions_to_failure")
	b.ReportMetric(d.DailyBudget5yr, "daily_budget_5yr")
}

// ---- Figure 7 sweeps ----

// benchSweep runs a reduced-scale Figure 7 sweep once per iteration and
// reports READ's mean improvement over MAID and PDC on the given metric.
func benchSweep(b *testing.B, metric Metric, intensity float64) {
	b.Helper()
	cfg := DefaultSweepConfig()
	cfg.Scale = 0.01
	cfg.Intensity = intensity
	cfg.DiskCounts = []int{6, 10, 16}
	var vsMAID, vsPDC float64
	for i := 0; i < b.N; i++ {
		res, err := RunSweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		m, err := res.ImprovementOver(metric, KindREAD, KindMAID)
		if err != nil {
			b.Fatal(err)
		}
		p, err := res.ImprovementOver(metric, KindREAD, KindPDC)
		if err != nil {
			b.Fatal(err)
		}
		vsMAID, vsPDC = m.MeanPercent, p.MeanPercent
	}
	b.ReportMetric(vsMAID, "read_vs_maid_pct")
	b.ReportMetric(vsPDC, "read_vs_pdc_pct")
}

func BenchmarkFig7aReliabilityLight(b *testing.B) {
	benchSweep(b, MetricAFR, LightIntensity)
}

func BenchmarkFig7bEnergyLight(b *testing.B) {
	benchSweep(b, MetricEnergy, LightIntensity)
}

func BenchmarkFig7cResponseTimeLight(b *testing.B) {
	benchSweep(b, MetricResponse, LightIntensity)
}

func BenchmarkFig7aReliabilityHeavy(b *testing.B) {
	benchSweep(b, MetricAFR, HeavyIntensity)
}

func BenchmarkFig7bEnergyHeavy(b *testing.B) {
	benchSweep(b, MetricEnergy, HeavyIntensity)
}

func BenchmarkFig7cResponseTimeHeavy(b *testing.B) {
	benchSweep(b, MetricResponse, HeavyIntensity)
}

// ---- Ablations (DESIGN.md §6) ----

// BenchmarkAblationTransitionCap sweeps READ's daily transition cap S and
// reports the resulting array AFR — the in-simulator version of the paper's
// "is it worthwhile above 65/day?" question.
func BenchmarkAblationTransitionCap(b *testing.B) {
	for _, s := range []int{5, 40, 200, 1600} {
		s := s
		b.Run("S="+strconv.Itoa(s), func(b *testing.B) {
			cfg := DefaultGenConfig()
			cfg.PhaseSeconds = 7200 * 0.004
			cfg.PhaseRotate = 0.10
			cfg.DiurnalProfile = DefaultDiurnalProfile()
			cfg.NumRequests = 6000
			cfg.MeanInterarrival /= LightIntensity
			trace, err := GenerateTrace(cfg)
			if err != nil {
				b.Fatal(err)
			}
			var afr float64
			for i := 0; i < b.N; i++ {
				res, err := Simulate(SimConfig{
					Disks:        8,
					Trace:        trace,
					Policy:       NewREAD(READConfig{MaxTransitionsPerDay: s}),
					EpochSeconds: 15,
				})
				if err != nil {
					b.Fatal(err)
				}
				afr = res.ArrayAFR
			}
			b.ReportMetric(afr, "array_afr_pct")
		})
	}
}

// BenchmarkAblationUncappedDRPM contrasts READ against the uncapped
// dynamic-speed policy on the same workload.
func BenchmarkAblationUncappedDRPM(b *testing.B) {
	cfg := DefaultGenConfig()
	cfg.PhaseSeconds = 7200 * 0.004
	cfg.PhaseRotate = 0.10
	cfg.DiurnalProfile = DefaultDiurnalProfile()
	cfg.NumRequests = 6000
	cfg.MeanInterarrival /= LightIntensity
	trace, err := GenerateTrace(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var readAFR, drpmAFR float64
	for i := 0; i < b.N; i++ {
		r, err := Simulate(SimConfig{Disks: 8, Trace: trace, Policy: NewREAD(READConfig{}), EpochSeconds: 15})
		if err != nil {
			b.Fatal(err)
		}
		d, err := Simulate(SimConfig{Disks: 8, Trace: trace, Policy: NewDRPM(DRPMConfig{}), EpochSeconds: 15})
		if err != nil {
			b.Fatal(err)
		}
		readAFR, drpmAFR = r.ArrayAFR, d.ArrayAFR
	}
	b.ReportMetric(readAFR, "read_afr_pct")
	b.ReportMetric(drpmAFR, "drpm_afr_pct")
}

// BenchmarkAblationIntegrationModes compares the three PRESS integrator
// rules on a fixed factor set.
func BenchmarkAblationIntegrationModes(b *testing.B) {
	factors := []Factors{
		{TempC: 50, Utilization: 0.8, TransitionsPerDay: 20},
		{TempC: 45, Utilization: 0.4, TransitionsPerDay: 300},
		{TempC: 40, Utilization: 0.3, TransitionsPerDay: 2},
	}
	for _, mode := range []IntegrationMode{SharedBaseline, MaxFactor, MeanFactor} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			m := NewPRESS(WithIntegrationMode(mode))
			var afr float64
			for i := 0; i < b.N; i++ {
				v, err := m.ArrayAFR(factors)
				if err != nil {
					b.Fatal(err)
				}
				afr = v
			}
			b.ReportMetric(afr, "array_afr_pct")
		})
	}
}

// ---- Extensions (paper §6 future work) ----

// extensionTrace is the shared workload for the extension benchmarks.
func extensionTrace(b *testing.B) *Trace {
	b.Helper()
	cfg := DefaultGenConfig()
	cfg.PhaseSeconds = 7200 * 0.004
	cfg.PhaseRotate = 0.10
	cfg.DiurnalProfile = DefaultDiurnalProfile()
	cfg.NumRequests = 6000
	trace, err := GenerateTrace(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return trace
}

// BenchmarkExtensionReplication compares READ against its replication
// variant: same service, fewer background transfers.
func BenchmarkExtensionReplication(b *testing.B) {
	trace := extensionTrace(b)
	var readOps, repOps float64
	for i := 0; i < b.N; i++ {
		r, err := Simulate(SimConfig{Disks: 8, Trace: trace, Policy: NewREAD(READConfig{}), EpochSeconds: 15})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := Simulate(SimConfig{Disks: 8, Trace: trace,
			Policy: NewREADReplica(READReplicaConfig{}), EpochSeconds: 15})
		if err != nil {
			b.Fatal(err)
		}
		readOps, repOps = float64(r.BackgroundOps), float64(rep.BackgroundOps)
	}
	b.ReportMetric(readOps, "read_bg_ops")
	b.ReportMetric(repOps, "replica_bg_ops")
}

// BenchmarkExtensionStriping measures the large-file latency win of
// RAID-0-style striping on a media workload.
func BenchmarkExtensionStriping(b *testing.B) {
	files := FileSet{}
	for i := 0; i < 40; i++ {
		files = append(files, File{ID: i, SizeMB: 30 + float64(i), AccessRate: 1 / float64(i+1)})
	}
	var reqs []Request
	for i := 0; i < 500; i++ {
		reqs = append(reqs, Request{Arrival: float64(i) * 2, FileID: i % 40})
	}
	trace := &Trace{Files: files, Requests: reqs}
	var plainMS, stripedMS float64
	for i := 0; i < b.N; i++ {
		p, err := Simulate(SimConfig{Disks: 8, Trace: trace, Policy: NewAlwaysOn()})
		if err != nil {
			b.Fatal(err)
		}
		s, err := Simulate(SimConfig{Disks: 8, Trace: trace,
			Policy: NewStripedAlwaysOn(StripedConfig{Width: 4})})
		if err != nil {
			b.Fatal(err)
		}
		plainMS, stripedMS = p.MeanResponse*1e3, s.MeanResponse*1e3
	}
	b.ReportMetric(plainMS, "sequential_ms")
	b.ReportMetric(stripedMS, "striped_ms")
}

// BenchmarkExtensionDriveProfiles runs READ across the three drive classes.
func BenchmarkExtensionDriveProfiles(b *testing.B) {
	trace := extensionTrace(b)
	profiles := map[string]DiskParams{
		"cheetah10k":    DefaultDiskParams(),
		"enterprise15k": EnterpriseParams(),
		"nearline7k":    NearlineParams(),
	}
	for name, params := range profiles {
		params := params
		b.Run(name, func(b *testing.B) {
			var energy, afr float64
			for i := 0; i < b.N; i++ {
				res, err := Simulate(SimConfig{
					Disks: 8, Trace: trace, DiskParams: params,
					Policy: NewREAD(READConfig{}), EpochSeconds: 15,
				})
				if err != nil {
					b.Fatal(err)
				}
				energy, afr = res.EnergyJ, res.ArrayAFR
			}
			b.ReportMetric(energy/1e3, "energy_kJ")
			b.ReportMetric(afr, "array_afr_pct")
		})
	}
}

// BenchmarkExtensionSeekModel quantifies the cost of the distance-based
// seek model versus the flat approximation.
func BenchmarkExtensionSeekModel(b *testing.B) {
	trace := extensionTrace(b)
	for _, mode := range []string{"flat", "curve"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			params := DefaultDiskParams()
			if mode == "curve" {
				params.Seek = DefaultSeekModel()
			}
			var ms float64
			for i := 0; i < b.N; i++ {
				res, err := Simulate(SimConfig{
					Disks: 8, Trace: trace, DiskParams: params, Policy: NewAlwaysOn(),
				})
				if err != nil {
					b.Fatal(err)
				}
				ms = res.MeanResponse * 1e3
			}
			b.ReportMetric(ms, "mean_response_ms")
		})
	}
}

// BenchmarkExtensionWorth runs the title-question arithmetic.
func BenchmarkExtensionWorth(b *testing.B) {
	trace := extensionTrace(b)
	baseline, err := Simulate(SimConfig{Disks: 8, Trace: trace, Policy: NewAlwaysOn(), EpochSeconds: 15})
	if err != nil {
		b.Fatal(err)
	}
	scheme, err := Simulate(SimConfig{Disks: 8, Trace: trace, Policy: NewREAD(READConfig{}), EpochSeconds: 15})
	if err != nil {
		b.Fatal(err)
	}
	model := DefaultCostModel()
	var net float64
	for i := 0; i < b.N; i++ {
		v, err := CompareCost(model, scheme, baseline)
		if err != nil {
			b.Fatal(err)
		}
		net = v.NetPerYear
	}
	b.ReportMetric(net, "read_net_usd_per_year")
}

// ---- Substrate micro-benchmarks ----

func BenchmarkSimulatorThroughput(b *testing.B) {
	// End-to-end simulated requests per second of wall time, the figure
	// that bounds full-scale experiment runtime.
	cfg := DefaultGenConfig()
	cfg.NumRequests = 20000
	trace, err := GenerateTrace(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		res, err := Simulate(SimConfig{Disks: 10, Trace: trace, Policy: NewAlwaysOn()})
		if err != nil {
			b.Fatal(err)
		}
		total += res.Requests
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "requests/s")
}

func BenchmarkTraceGeneration(b *testing.B) {
	cfg := DefaultGenConfig()
	cfg.NumRequests = 100000
	cfg.DiurnalProfile = DefaultDiurnalProfile()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateTrace(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
